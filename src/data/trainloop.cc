#include "trainloop.hh"

#include <algorithm>
#include <numeric>

#include "data/augment.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "util/check.hh"
#include "util/logging.hh"

namespace leca {

Dataset
sliceDataset(const Dataset &ds, int begin, int count)
{
    LECA_CHECK(begin >= 0 && begin + count <= ds.count(),
                "slice out of range");
    const int c = ds.images.size(1), h = ds.images.size(2);
    const int w = ds.images.size(3);
    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    Dataset out;
    out.images = Tensor::fromData(
        {count, c, h, w},
        std::vector<float>(ds.images.data() + begin * img_sz,
                           ds.images.data() + (begin + count) * img_sz));
    out.labels.assign(ds.labels.begin() + begin,
                      ds.labels.begin() + begin + count);
    return out;
}

Dataset
gatherBatch(const Dataset &ds, const std::vector<int> &order, int begin,
            int count)
{
    const int c = ds.images.size(1), h = ds.images.size(2);
    const int w = ds.images.size(3);
    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    Dataset batch;
    batch.images = Tensor({count, c, h, w});
    batch.labels.resize(static_cast<std::size_t>(count));
    parallelFor(0, count, 8, [&](std::int64_t i0, std::int64_t i1) {
        for (int i = static_cast<int>(i0); i < i1; ++i) {
            const int src = order[static_cast<std::size_t>(begin + i)];
            std::copy(ds.images.data() + src * img_sz,
                      ds.images.data() + (src + 1) * img_sz,
                      batch.images.data() + i * img_sz);
            batch.labels[static_cast<std::size_t>(i)] =
                ds.labels[static_cast<std::size_t>(src)];
        }
    });
    return batch;
}

BatchPipeline::BatchPipeline(const Dataset &ds,
                             const std::vector<int> &order, int batch_size,
                             bool prefetch,
                             std::vector<std::vector<Rng>> augment_rngs,
                             double max_degrees)
    : _ds(ds), _order(order), _batchSize(batch_size),
      _batchCount((ds.count() + batch_size - 1) / batch_size),
      _prefetch(prefetch), _maxDegrees(max_degrees),
      _rngs(std::move(augment_rngs))
{
    LECA_CHECK(batch_size > 0, "batch size must be positive, got ",
               batch_size);
    LECA_CHECK(order.size() == static_cast<std::size_t>(ds.count()),
               "order has ", order.size(), " entries for ", ds.count(),
               " images");
    LECA_CHECK(_rngs.empty()
                   || _rngs.size() == static_cast<std::size_t>(_batchCount),
               "got ", _rngs.size(), " augment streams for ", _batchCount,
               " batches");
}

void
BatchPipeline::produce(int b, Dataset &slot)
{
    const int begin = b * _batchSize;
    const int count = std::min(_batchSize, _ds.count() - begin);
    const int c = _ds.images.size(1), h = _ds.images.size(2);
    const int w = _ds.images.size(3);
    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    // Reuse the slot's storage when the shape repeats (every batch but
    // possibly the last), so steady-state epochs allocate nothing here.
    if (slot.images.dim() != 4 || slot.images.size(0) != count
        || slot.images.size(1) != c || slot.images.size(2) != h
        || slot.images.size(3) != w)
        slot.images = Tensor({count, c, h, w});
    slot.labels.resize(static_cast<std::size_t>(count));
    parallelFor(0, count, 8, [&](std::int64_t i0, std::int64_t i1) {
        for (int i = static_cast<int>(i0); i < i1; ++i) {
            const int src = _order[static_cast<std::size_t>(begin + i)];
            std::copy(_ds.images.data() + src * img_sz,
                      _ds.images.data() + (src + 1) * img_sz,
                      slot.images.data() + i * img_sz);
            slot.labels[static_cast<std::size_t>(i)] =
                _ds.labels[static_cast<std::size_t>(src)];
        }
    });
    if (!_rngs.empty())
        augmentBatch(slot.images, _rngs[static_cast<std::size_t>(b)],
                     _maxDegrees);
}

const Dataset &
BatchPipeline::batch(int b)
{
    LECA_CHECK(b >= 0 && b < _batchCount, "batch ", b, " out of range [0, ",
               _batchCount, ")");
    Dataset &slot = _slots[b & 1];
    if (!_prefetch) {
        produce(b, slot);
        return slot;
    }
    if (_next == b) {
        // First request: nothing in flight yet, produce synchronously.
        produce(b, slot);
        _next = b + 1;
    } else {
        LECA_CHECK(_next == b + 1,
                   "batches must be consumed in ascending order (expected ",
                   _next - 1, ", got ", b, ")");
        _task.wait(); // batch b was produced in the background
    }
    if (_next < _batchCount) {
        Dataset &ahead = _slots[_next & 1];
        const int nb = _next;
        _task.run([this, nb, &ahead] { produce(nb, ahead); });
        ++_next;
    }
    return slot;
}

double
evalAccuracy(Layer &net, const Dataset &ds, int batch_size)
{
    const int n = ds.count();
    if (n == 0)
        return 0.0;
    const int c = ds.images.size(1), h = ds.images.size(2);
    const int w = ds.images.size(3);
    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    int correct = 0;
    // Batches stay sequential: layers cache activations in member
    // state, so the parallelism lives inside each forward (GEMM row
    // panels, per-image conv) rather than across batches. Each batch
    // is a borrowed view of the dataset slab — no copy.
    for (int begin = 0; begin < n; begin += batch_size) {
        const int count = std::min(batch_size, n - begin);
        const Tensor batch = Tensor::borrow(
            {count, c, h, w}, ds.images.data() + begin * img_sz);
        const Tensor logits = net.forward(batch, Mode::Eval);
        const std::vector<int> labels(ds.labels.begin() + begin,
                                      ds.labels.begin() + begin + count);
        const double acc = accuracy(logits, labels);
        correct += static_cast<int>(acc * count + 0.5);
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

double
trainClassifier(Layer &net, const Dataset &train, const Dataset &val,
                const TrainOptions &options)
{
    Rng rng(options.seed);
    Adam adam(net.params(), options.learningRate);
    SoftmaxCrossEntropy loss;

    std::vector<int> order(static_cast<std::size_t>(train.count()));
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        if (options.lrDecayEveryEpochs > 0 && epoch > 0 &&
            epoch % options.lrDecayEveryEpochs == 0) {
            adam.setLearningRate(adam.learningRate()
                                 * options.lrDecayFactor);
        }
        // Fisher-Yates shuffle.
        for (int i = train.count() - 1; i > 0; --i) {
            const int j = rng.uniformInt(0, i);
            std::swap(order[static_cast<std::size_t>(i)],
                      order[static_cast<std::size_t>(j)]);
        }
        // Pre-split every batch's per-image augmentation streams in
        // batch order: the parent rng advances exactly as it did when
        // each batch split on demand, and a prefetched batch draws the
        // same numbers a sequential run would.
        std::vector<std::vector<Rng>> batch_rngs;
        if (options.augment) {
            for (int begin = 0; begin < train.count();
                 begin += options.batchSize) {
                const int count =
                    std::min(options.batchSize, train.count() - begin);
                batch_rngs.push_back(
                    Rng::split(rng, static_cast<std::size_t>(count)));
            }
        }
        BatchPipeline batches(train, order, options.batchSize,
                              options.prefetch, std::move(batch_rngs));
        double epoch_loss = 0.0;
        const int batch_count = batches.batchCount();
        for (int b = 0; b < batch_count; ++b) {
            const Dataset &batch = batches.batch(b);
            adam.zeroGrad();
            const Tensor logits = net.forward(batch.images, Mode::Train);
            epoch_loss += loss.forward(logits, batch.labels);
            net.backward(loss.backward());
            adam.step();
        }
        const double mean_loss = epoch_loss / std::max(1, batch_count);
        if (options.epochLosses)
            options.epochLosses->push_back(mean_loss);
        if (options.verbose) {
            inform("epoch ", epoch + 1, "/", options.epochs, " loss ",
                   mean_loss);
        }
    }
    refreshBatchNormStats(net, train, options.batchSize);
    return evalAccuracy(net, val);
}

void
refreshBatchNormStats(Layer &net, const Dataset &ds, int batch_size)
{
    const int c = ds.images.size(1), h = ds.images.size(2);
    const int w = ds.images.size(3);
    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    net.setStatsRefresh(true);
    for (int begin = 0; begin < ds.count(); begin += batch_size) {
        const int count = std::min(batch_size, ds.count() - begin);
        const Tensor batch = Tensor::borrow(
            {count, c, h, w}, ds.images.data() + begin * img_sz);
        net.forward(batch, Mode::Train);
    }
    net.setStatsRefresh(false);
}

} // namespace leca
