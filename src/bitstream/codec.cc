#include "bitstream/codec.hh"

#include <array>
#include <cstring>
#include <utility>

#include "bitstream/bitio.hh"
#include "bitstream/container.hh"
#include "bitstream/rans.hh"
#include "util/check.hh"

namespace leca::bitstream {

namespace {

// Section ids shared by every container kind.
constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecCodes = 2;
constexpr std::uint32_t kSecScales = 3;

struct CodedSection
{
    Coder coder = Coder::Raw;
    Predictor predictor = Predictor::None;
    std::uint16_t aux = 0;
    std::uint64_t predStride = 0;
    std::vector<std::uint8_t> payload;
};

/** Fixed-width bit width of the largest symbol in @p data. */
int
packedWidth(const std::uint8_t *data, std::size_t n)
{
    std::uint8_t mx = 0;
    for (std::size_t i = 0; i < n; ++i)
        mx = data[i] > mx ? data[i] : mx;
    int width = 0;
    while ((1u << width) <= mx)
        ++width;
    return width;
}

/** Code @p data with one concrete coder; payload appended to fresh vec. */
std::vector<std::uint8_t>
codeWith(Coder coder, const std::uint8_t *data, std::size_t n,
         std::uint16_t &aux)
{
    std::vector<std::uint8_t> payload;
    aux = 0;
    switch (coder) {
    case Coder::Raw:
        payload.assign(data, data + n);
        break;
    case Coder::Packed: {
        const int width = packedWidth(data, n);
        aux = static_cast<std::uint16_t>(width);
        BitWriter bw;
        for (std::size_t i = 0; i < n; ++i)
            bw.put(data[i], width);
        payload = bw.finish();
        break;
    }
    case Coder::Rans: {
        std::array<std::uint64_t, 256> counts{};
        for (std::size_t i = 0; i < n; ++i)
            ++counts[data[i]];
        const RansFreqTable table = normalizeFreqs(counts, n);
        appendFreqTable(table, payload);
        ransEncode(data, n, table, payload);
        break;
    }
    }
    return payload;
}

/**
 * Pick predictor and coder for @p data deterministically: candidates
 * run in a fixed order (predictor None before Delta, coder Rans before
 * Packed before Raw) and only a STRICTLY smaller payload displaces the
 * incumbent, so ties always resolve to the earlier candidate.
 */
CodedSection
codeBytes(const std::uint8_t *data, std::size_t n, std::uint64_t stride,
          const BitstreamOptions &opts)
{
    CodedSection best;
    bool have_best = false;

    std::vector<std::uint8_t> residual;
    const bool try_none = opts.predictor != PredictorChoice::Delta;
    const bool try_delta =
        stride > 0 && opts.predictor != PredictorChoice::None;
    LECA_CHECK(try_none || try_delta,
               "delta predictor requested with stride 0");

    for (int p = 0; p < 2; ++p) {
        const Predictor pred = p == 0 ? Predictor::None : Predictor::Delta;
        if (pred == Predictor::None && !try_none)
            continue;
        if (pred == Predictor::Delta && !try_delta)
            continue;
        const std::uint8_t *src = data;
        if (pred == Predictor::Delta) {
            residual.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                residual[i] = i < stride
                                  ? data[i]
                                  : static_cast<std::uint8_t>(
                                        data[i] - data[i - stride]);
            src = residual.data();
        }
        for (const Coder coder : {Coder::Rans, Coder::Packed, Coder::Raw}) {
            if (opts.coder == CoderChoice::Rans && coder != Coder::Rans)
                continue;
            if (opts.coder == CoderChoice::Packed && coder != Coder::Packed)
                continue;
            if (opts.coder == CoderChoice::Raw && coder != Coder::Raw)
                continue;
            if (coder == Coder::Rans && n == 0)
                continue;  // no histogram to model
            std::uint16_t aux = 0;
            std::vector<std::uint8_t> payload = codeWith(coder, src, n, aux);
            if (!have_best || payload.size() < best.payload.size()) {
                best.coder = coder;
                best.predictor = pred;
                best.aux = aux;
                best.predStride = pred == Predictor::Delta ? stride : 0;
                best.payload = std::move(payload);
                have_best = true;
            }
        }
    }
    LECA_CHECK(have_best, "no admissible coder for section of ", n,
               " bytes (coder choice too restrictive for empty input?)");
    return best;
}

/** Decode one section's payload into @p out (exactly rawLen bytes). */
void
decodeSectionInto(const Section &s, const std::uint8_t *payload,
                  std::uint8_t *out)
{
    const std::size_t n = static_cast<std::size_t>(s.rawLen);
    if (n == 0) {
        // Empty sections carry no payload at all; returning before the
        // coders also keeps memcpy/BitReader away from null @p out.
        LECA_CHECK(s.encLen == 0, "corrupt bitstream: empty section ",
                   s.id, " stores ", s.encLen, " bytes");
        return;
    }
    switch (s.coder) {
    case Coder::Raw:
        LECA_CHECK(s.encLen == s.rawLen, "corrupt bitstream: raw section ",
                   s.id, " stores ", s.encLen, " bytes for ", s.rawLen);
        // Length equality just checked against the validated rawLen.
        std::memcpy(out, payload, n);  // leca-lint: bitstream-validated
        break;
    case Coder::Packed: {
        const int width = s.aux;
        LECA_CHECK(width >= 0 && width <= 8,
                   "corrupt bitstream: packed width ", width,
                   " in section ", s.id);
        const std::uint64_t need = (s.rawLen * width + 7) / 8;
        LECA_CHECK(s.encLen == need, "corrupt bitstream: packed section ",
                   s.id, " stores ", s.encLen, " bytes, expected ", need);
        BitReader br(payload, static_cast<std::size_t>(s.encLen));
        for (std::size_t i = 0; i < n; ++i)
            out[i] = static_cast<std::uint8_t>(br.get(width));
        break;
    }
    case Coder::Rans: {
        RansFreqTable table;
        const std::size_t used = parseFreqTable(
            payload, static_cast<std::size_t>(s.encLen), table);
        ransDecode(payload + used,
                   static_cast<std::size_t>(s.encLen) - used, table, out,
                   n);
        break;
    }
    }
    if (s.predictor == Predictor::Delta) {
        LECA_CHECK(s.predStride > 0,
                   "corrupt bitstream: delta section ", s.id,
                   " with stride 0");
        for (std::size_t i = static_cast<std::size_t>(s.predStride); i < n;
             ++i)
            out[i] = static_cast<std::uint8_t>(
                out[i] + out[i - static_cast<std::size_t>(s.predStride)]);
    } else {
        LECA_CHECK(s.predStride == 0,
                   "corrupt bitstream: predictor-less section ", s.id,
                   " carries stride ", s.predStride);
    }
}

void
addCoded(ContainerWriter &cw, std::uint32_t id, CodedSection coded,
         std::uint64_t rawLen)
{
    cw.addSection(id, coded.coder, coded.predictor, coded.aux,
                  coded.predStride, rawLen, std::move(coded.payload));
}

/** Scales (and other fp32 metadata) travel as raw checksummed bytes. */
void
addRawSection(ContainerWriter &cw, std::uint32_t id, const void *bytes,
              std::size_t count)
{
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    cw.addSection(id, Coder::Raw, Predictor::None, 0, 0, count,
                  std::vector<std::uint8_t>(p, p + count));
}

/** Fetch a required section or throw. */
const Section &
requireSection(const ContainerReader &cr, std::uint32_t id)
{
    const Section *s = cr.findSection(id);
    LECA_CHECK(s != nullptr, "corrupt bitstream: missing section ", id);
    return *s;
}

std::int64_t
loadI64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return static_cast<std::int64_t>(v);
}

std::int32_t
loadI32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return static_cast<std::int32_t>(v);
}

void
appendI64(std::vector<std::uint8_t> &out, std::int64_t value)
{
    const std::uint64_t v = static_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
appendI32(std::vector<std::uint8_t> &out, std::int32_t value)
{
    const std::uint32_t v = static_cast<std::uint32_t>(value);
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

} // namespace

// ---- QuantTensor ----------------------------------------------------

std::vector<std::uint8_t>
encodeBitstream(const QuantTensor &qt, const BitstreamOptions &opts)
{
    LECA_CHECK(qt.nb == quantBlocks(qt.cols), "QuantTensor nb ", qt.nb,
               " inconsistent with cols ", qt.cols);
    ContainerWriter cw(kKindQuantTensor);

    std::vector<std::uint8_t> meta;
    meta.reserve(4 + 16 + 4 * qt.shape.size());
    appendI32(meta, static_cast<std::int32_t>(qt.shape.size()));
    appendI64(meta, qt.rows);
    appendI64(meta, qt.cols);
    for (int d : qt.shape)
        appendI32(meta, d);
    addRawSection(cw, kSecMeta, meta.data(), meta.size());

    // Codes: our own int8 buffer viewed as bytes (mod-256 bijection;
    // the delta predictor and coders are byte-domain either way).
    const auto *codes =  // leca-lint: bitstream-validated
        reinterpret_cast<const std::uint8_t *>(qt.q.data());
    const std::uint64_t row_stride =
        static_cast<std::uint64_t>(qt.nb) * kQuantBlock;
    addCoded(cw, kSecCodes, codeBytes(codes, qt.q.size(), row_stride, opts),
             qt.q.size());

    addRawSection(cw, kSecScales, qt.scales.data(),
                  qt.scales.size() * sizeof(float));
    return cw.finish();
}

QuantTensor
decodeBitstreamTensor(const std::uint8_t *data, std::size_t size)
{
    ContainerReader cr(data, size);
    LECA_CHECK(cr.kind() == kKindQuantTensor,
               "bitstream kind ", cr.kind(), " is not a QuantTensor (",
               kKindQuantTensor, ")");

    const Section &meta_s = requireSection(cr, kSecMeta);
    LECA_CHECK(meta_s.coder == Coder::Raw
                   && meta_s.predictor == Predictor::None,
               "corrupt bitstream: QuantTensor meta section must be raw");
    LECA_CHECK(meta_s.rawLen >= 20,
               "corrupt bitstream: QuantTensor meta truncated");
    const std::uint8_t *meta = nullptr;
    for (std::size_t i = 0; i < cr.sectionCount(); ++i)
        if (cr.section(i).id == kSecMeta)
            meta = cr.payload(i);
    const std::int32_t ndim = loadI32(meta);
    LECA_CHECK(ndim >= 1 && ndim <= 8,
               "corrupt bitstream: QuantTensor rank ", ndim);
    LECA_CHECK(meta_s.rawLen == 20 + 4 * static_cast<std::uint64_t>(ndim),
               "corrupt bitstream: QuantTensor meta is ", meta_s.rawLen,
               " bytes for rank ", ndim);

    QuantTensor qt;
    qt.rows = loadI64(meta + 4);
    qt.cols = loadI64(meta + 12);
    LECA_CHECK(qt.rows >= 0 && qt.rows <= (1 << 30),
               "corrupt bitstream: QuantTensor rows ", qt.rows);
    LECA_CHECK(qt.cols >= 0 && qt.cols <= (1 << 30),
               "corrupt bitstream: QuantTensor cols ", qt.cols);
    qt.nb = quantBlocks(qt.cols);
    qt.shape.resize(static_cast<std::size_t>(ndim));
    std::int64_t numel = 1;
    for (std::int32_t i = 0; i < ndim; ++i) {
        const std::int32_t d = loadI32(meta + 20 + 4 * i);
        LECA_CHECK(d >= 0 && d <= (1 << 30),
                   "corrupt bitstream: QuantTensor dim ", i, " = ", d);
        qt.shape[static_cast<std::size_t>(i)] = d;
        numel *= d;
        LECA_CHECK(numel <= (std::int64_t{1} << 40),
                   "corrupt bitstream: QuantTensor numel overflows");
    }
    LECA_CHECK(numel == qt.rows * qt.cols,
               "corrupt bitstream: QuantTensor shape has ", numel,
               " elements but the view is ", qt.rows, "x", qt.cols);

    const std::uint64_t ncodes =
        static_cast<std::uint64_t>(qt.rows) * qt.nb * kQuantBlock;
    const Section &codes_s = requireSection(cr, kSecCodes);
    LECA_CHECK(codes_s.rawLen == ncodes,
               "corrupt bitstream: QuantTensor codes section is ",
               codes_s.rawLen, " bytes, expected ", ncodes);
    const Section &scales_s = requireSection(cr, kSecScales);
    const std::uint64_t nscales =
        static_cast<std::uint64_t>(qt.rows) * qt.nb;
    LECA_CHECK(scales_s.rawLen == nscales * sizeof(float),
               "corrupt bitstream: QuantTensor scales section is ",
               scales_s.rawLen, " bytes, expected ",
               nscales * sizeof(float));

    qt.q.resize(static_cast<std::size_t>(ncodes));
    qt.scales.resize(static_cast<std::size_t>(nscales));
    for (std::size_t i = 0; i < cr.sectionCount(); ++i) {
        const Section &s = cr.section(i);
        if (s.id == kSecCodes) {
            // Destination sized from the validated meta section above.
            auto *dst =  // leca-lint: bitstream-validated
                reinterpret_cast<std::uint8_t *>(qt.q.data());
            decodeSectionInto(s, cr.payload(i), dst);
        } else if (s.id == kSecScales) {
            LECA_CHECK(s.coder == Coder::Raw
                           && s.predictor == Predictor::None
                           && s.encLen == s.rawLen,
                       "corrupt bitstream: scales section must be raw");
            // Length pinned to rows*nb floats by the checks above (and
            // may be zero for an empty tensor — scales.data() is null
            // then, so the copy must not run).
            if (s.rawLen != 0) {
                // leca-lint: bitstream-validated
                std::memcpy(qt.scales.data(), cr.payload(i),
                            static_cast<std::size_t>(s.rawLen));
            }
        }
    }
    return qt;
}

// ---- QuantActivation ------------------------------------------------

std::vector<std::uint8_t>
encodeBitstream(const QuantActivation &act, const BitstreamOptions &opts)
{
    LECA_CHECK(act.n >= 0 && act.c >= 0 && act.h >= 0 && act.w >= 0,
               "QuantActivation with negative shape ", act.n, "x", act.c,
               "x", act.h, "x", act.w);
    LECA_CHECK(!act.empty() || act.rows() * quantPadded(act.c) == 0,
               "QuantActivation with null buffers but non-empty shape");
    ContainerWriter cw(kKindQuantActivation);

    std::vector<std::uint8_t> meta;
    meta.reserve(16);
    appendI32(meta, act.n);
    appendI32(meta, act.c);
    appendI32(meta, act.h);
    appendI32(meta, act.w);
    addRawSection(cw, kSecMeta, meta.data(), meta.size());

    const std::size_t ncodes =
        static_cast<std::size_t>(act.rows()) * quantPadded(act.c);
    const auto *codes =  // leca-lint: bitstream-validated
        reinterpret_cast<const std::uint8_t *>(act.q);
    // Pixel-major rows: delta against the previous pixel's channel
    // vector (stride = padded channel extent) models the spatial
    // smoothness of feature maps.
    addCoded(cw, kSecCodes,
             codeBytes(codes, ncodes,
                       static_cast<std::uint64_t>(quantPadded(act.c)),
                       opts),
             ncodes);

    const std::size_t nscales =
        static_cast<std::size_t>(act.rows()) * act.nbc();
    addRawSection(cw, kSecScales, act.scales, nscales * sizeof(float));
    return cw.finish();
}

OwnedActivation
decodeBitstreamActivation(const std::uint8_t *data, std::size_t size)
{
    ContainerReader cr(data, size);
    LECA_CHECK(cr.kind() == kKindQuantActivation,
               "bitstream kind ", cr.kind(), " is not a QuantActivation (",
               kKindQuantActivation, ")");

    const Section &meta_s = requireSection(cr, kSecMeta);
    LECA_CHECK(meta_s.coder == Coder::Raw
                   && meta_s.predictor == Predictor::None
                   && meta_s.rawLen == 16,
               "corrupt bitstream: QuantActivation meta must be 16 raw "
               "bytes, got ",
               meta_s.rawLen);

    OwnedActivation out;
    for (std::size_t i = 0; i < cr.sectionCount(); ++i) {
        if (cr.section(i).id != kSecMeta)
            continue;
        const std::uint8_t *meta = cr.payload(i);
        out.n = loadI32(meta);
        out.c = loadI32(meta + 4);
        out.h = loadI32(meta + 8);
        out.w = loadI32(meta + 12);
    }
    LECA_CHECK(out.n >= 0 && out.c >= 0 && out.h >= 0 && out.w >= 0,
               "corrupt bitstream: QuantActivation shape ", out.n, "x",
               out.c, "x", out.h, "x", out.w);
    const std::int64_t rows =
        static_cast<std::int64_t>(out.n) * out.h * out.w;
    LECA_CHECK(rows <= (1 << 30) && out.c <= (1 << 20),
               "corrupt bitstream: QuantActivation too large (", rows,
               " pixel rows, ", out.c, " channels)");

    const std::uint64_t ncodes =
        static_cast<std::uint64_t>(rows) * quantPadded(out.c);
    const std::uint64_t nscales =
        static_cast<std::uint64_t>(rows) * quantBlocks(out.c);
    const Section &codes_s = requireSection(cr, kSecCodes);
    LECA_CHECK(codes_s.rawLen == ncodes,
               "corrupt bitstream: QuantActivation codes section is ",
               codes_s.rawLen, " bytes, expected ", ncodes);
    const Section &scales_s = requireSection(cr, kSecScales);
    LECA_CHECK(scales_s.rawLen == nscales * sizeof(float),
               "corrupt bitstream: QuantActivation scales section is ",
               scales_s.rawLen, " bytes, expected ",
               nscales * sizeof(float));

    out.q.resize(static_cast<std::size_t>(ncodes));
    out.scales.resize(static_cast<std::size_t>(nscales));
    for (std::size_t i = 0; i < cr.sectionCount(); ++i) {
        const Section &s = cr.section(i);
        if (s.id == kSecCodes) {
            // Destination sized from the validated meta section above.
            auto *dst =  // leca-lint: bitstream-validated
                reinterpret_cast<std::uint8_t *>(out.q.data());
            decodeSectionInto(s, cr.payload(i), dst);
        } else if (s.id == kSecScales) {
            LECA_CHECK(s.coder == Coder::Raw
                           && s.predictor == Predictor::None
                           && s.encLen == s.rawLen,
                       "corrupt bitstream: scales section must be raw");
            // Length pinned to rows*nbc floats by the checks above (and
            // may be zero for an empty activation — scales.data() is
            // null then, so the copy must not run).
            if (s.rawLen != 0) {
                // leca-lint: bitstream-validated
                std::memcpy(out.scales.data(), cr.payload(i),
                            static_cast<std::size_t>(s.rawLen));
            }
        }
    }
    return out;
}

// ---- Raw symbol streams ---------------------------------------------

std::vector<std::uint8_t>
encodeByteStream(const std::uint8_t *data, std::size_t n,
                 std::uint64_t predStride, const BitstreamOptions &opts)
{
    LECA_CHECK(data != nullptr || n == 0,
               "encodeByteStream over null data of size ", n);
    ContainerWriter cw(kKindByteStream);
    addCoded(cw, kSecCodes, codeBytes(data, n, predStride, opts), n);
    return cw.finish();
}

std::vector<std::uint8_t>
decodeByteStream(const std::uint8_t *data, std::size_t size)
{
    ContainerReader cr(data, size);
    LECA_CHECK(cr.kind() == kKindByteStream, "bitstream kind ", cr.kind(),
               " is not a byte stream (", kKindByteStream, ")");
    const Section &s = requireSection(cr, kSecCodes);
    std::vector<std::uint8_t> out(static_cast<std::size_t>(s.rawLen));
    for (std::size_t i = 0; i < cr.sectionCount(); ++i)
        if (cr.section(i).id == kSecCodes)
            decodeSectionInto(s, cr.payload(i), out.data());
    return out;
}

} // namespace leca::bitstream
