/**
 * @file
 * Entropy-coded wire format for quantized LeCA data (DESIGN.md §14).
 *
 * encodeBitstream turns a QuantTensor / QuantActivation / raw code
 * byte stream into a self-describing container (container.hh): codes
 * go through an optional per-row delta predictor and the smallest of
 * the rANS / bit-packed / raw coders; scales and shape metadata ride
 * along as raw checksummed sections. decodeBitstream* reverses it
 * bit-exactly — the decoded codes memcmp-equal the input, so the
 * resident int8 inference path is untouched by a wire round-trip.
 *
 * Coder and predictor selection under Auto is deterministic (fixed
 * candidate order, strictly-smaller wins), and every coder is serial
 * integer math, so encoded bytes are identical across LECA_THREADS,
 * LECA_ISA, and hosts. All decode paths go through ContainerReader's
 * up-front validation and throw leca::CheckError on any corruption.
 */

#ifndef LECA_BITSTREAM_CODEC_HH
#define LECA_BITSTREAM_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/quant.hh"

namespace leca::bitstream {

/** Container kinds (the codec-level analogue of serialize v2 kinds). */
inline constexpr std::uint32_t kKindQuantTensor = 1;
inline constexpr std::uint32_t kKindQuantActivation = 2;
inline constexpr std::uint32_t kKindByteStream = 3;

/** Entropy-coder selection; Auto picks the smallest deterministically. */
enum class CoderChoice { Auto, Rans, Packed, Raw };

/** Predictor selection; Auto tries both and keeps the smaller result. */
enum class PredictorChoice { Auto, None, Delta };

struct BitstreamOptions
{
    CoderChoice coder = CoderChoice::Auto;
    PredictorChoice predictor = PredictorChoice::Auto;
};

// ---- QuantTensor ----------------------------------------------------

/** Encode a quantized weight tensor (codes + scales + shape). */
std::vector<std::uint8_t> encodeBitstream(const QuantTensor &qt,
                                          const BitstreamOptions &opts = {});

/** Decode a kKindQuantTensor container; CheckError on corruption. */
QuantTensor decodeBitstreamTensor(const std::uint8_t *data,
                                  std::size_t size);

// ---- QuantActivation ------------------------------------------------

/**
 * Owning storage for a decoded resident activation; QuantActivation
 * itself is a non-owning view, so the wire decoder hands back the
 * buffers plus a view() factory over them.
 */
struct OwnedActivation
{
    int n = 0, c = 0, h = 0, w = 0;
    std::vector<std::int8_t> q;
    std::vector<float> scales;

    QuantActivation view()
    {
        return QuantActivation{n, c, h, w, q.data(), scales.data()};
    }
};

/** Encode a resident activation (pixel-major codes + scales + shape). */
std::vector<std::uint8_t> encodeBitstream(const QuantActivation &act,
                                          const BitstreamOptions &opts = {});

/** Decode a kKindQuantActivation container; CheckError on corruption. */
OwnedActivation decodeBitstreamActivation(const std::uint8_t *data,
                                          std::size_t size);

// ---- Raw symbol streams (serve payloads, baseline wire symbols) -----

/**
 * Encode an arbitrary byte-symbol stream (e.g. the per-pixel code
 * stream a compression baseline would transmit). @p predStride is the
 * delta predictor's distance — the row width for image-like streams,
 * 0 to disable prediction.
 */
std::vector<std::uint8_t> encodeByteStream(const std::uint8_t *data,
                                           std::size_t n,
                                           std::uint64_t predStride,
                                           const BitstreamOptions &opts = {});

/** Decode a kKindByteStream container; CheckError on corruption. */
std::vector<std::uint8_t> decodeByteStream(const std::uint8_t *data,
                                           std::size_t size);

} // namespace leca::bitstream

#endif // LECA_BITSTREAM_CODEC_HH
