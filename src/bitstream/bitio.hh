/**
 * @file
 * Bit-granular serialization primitives for the wire format
 * (DESIGN.md §14): an appending BitWriter and a bounds-checked
 * BitReader.
 *
 * Packing order is LSB-first: the first bit written lands in bit 0 of
 * byte 0, the ninth in bit 0 of byte 1. A reader consuming the same
 * widths in the same order recovers the values exactly; the final
 * partial byte is zero-padded by finish(). All operations are plain
 * serial integer arithmetic, so written bytes are identical on every
 * host, thread count, and ISA.
 *
 * The reader never trusts its input: reading past the end of the
 * buffer throws CheckError (never reads out of bounds), which is what
 * the container decoder relies on when fed truncated or corrupt
 * payloads.
 */

#ifndef LECA_BITSTREAM_BITIO_HH
#define LECA_BITSTREAM_BITIO_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hh"

namespace leca::bitstream {

/** Append-only LSB-first bit packer. */
class BitWriter
{
  public:
    /** Append the low @p bits of @p value (bits in [0, 32]). */
    void
    put(std::uint32_t value, int bits)
    {
        LECA_DCHECK(bits >= 0 && bits <= 32, "BitWriter::put width ",
                    bits);
        LECA_DCHECK(bits == 32 || (value >> bits) == 0,
                    "BitWriter::put value wider than ", bits, " bits");
        _acc |= static_cast<std::uint64_t>(value) << _nbits;
        _nbits += bits;
        while (_nbits >= 8) {
            _bytes.push_back(static_cast<std::uint8_t>(_acc & 0xFF));
            _acc >>= 8;
            _nbits -= 8;
        }
    }

    /** Zero-pad to a byte boundary and return the packed bytes. */
    std::vector<std::uint8_t>
    finish()
    {
        if (_nbits > 0) {
            _bytes.push_back(static_cast<std::uint8_t>(_acc & 0xFF));
            _acc = 0;
            _nbits = 0;
        }
        return std::move(_bytes);
    }

    /** Bits written so far (excluding any final padding). */
    std::size_t
    bitCount() const
    {
        return _bytes.size() * 8 + static_cast<std::size_t>(_nbits);
    }

  private:
    std::vector<std::uint8_t> _bytes;
    std::uint64_t _acc = 0;
    int _nbits = 0;
};

/** Bounds-checked LSB-first bit reader over a borrowed buffer. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size)
        : _data(data), _size(size)
    {
        LECA_CHECK(data != nullptr || size == 0,
                   "BitReader over null buffer of size ", size);
    }

    /** Read @p bits (in [0, 32]); CheckError past the end. */
    std::uint32_t
    get(int bits)
    {
        LECA_DCHECK(bits >= 0 && bits <= 32, "BitReader::get width ",
                    bits);
        while (_nbits < bits) {
            LECA_CHECK(_pos < _size,
                       "corrupt bitstream: bit read past the end (byte ",
                       _pos, " of ", _size, ")");
            _acc |= static_cast<std::uint64_t>(_data[_pos++]) << _nbits;
            _nbits += 8;
        }
        const std::uint32_t value = static_cast<std::uint32_t>(
            _acc & ((bits == 32) ? 0xFFFFFFFFULL
                                 : ((1ULL << bits) - 1)));
        _acc >>= bits;
        _nbits -= bits;
        return value;
    }

    /** Bytes consumed from the underlying buffer so far. */
    std::size_t byteCursor() const { return _pos; }

  private:
    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _pos = 0;
    std::uint64_t _acc = 0;
    int _nbits = 0;
};

} // namespace leca::bitstream

#endif // LECA_BITSTREAM_BITIO_HH
