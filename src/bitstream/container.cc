#include "bitstream/container.hh"

#include <cstring>
#include <utility>

#include "util/check.hh"

namespace leca::bitstream {

namespace {

constexpr std::size_t kHeaderBytes = 16;   // magic, version, kind, nsections
constexpr std::size_t kSectionBytes = 40;  // one table descriptor

void
appendU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
appendU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/**
 * Little-endian loads over the header region. Callers bounds-check the
 * whole region before the first load (the constructor validates total
 * size up front), so these reads cannot leave the buffer.
 */
std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));  // leca-lint: bitstream-validated
    return v;
}

std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));  // leca-lint: bitstream-validated
    return v;
}

} // namespace

void
ContainerWriter::addSection(std::uint32_t id, Coder coder,
                            Predictor predictor, std::uint16_t aux,
                            std::uint64_t predStride, std::uint64_t rawLen,
                            std::vector<std::uint8_t> payload)
{
    LECA_CHECK(_sections.size() < kMaxSections, "container section count ",
               _sections.size() + 1, " exceeds limit ", kMaxSections);
    LECA_CHECK(rawLen <= kMaxSectionRawLen, "container section rawLen ",
               rawLen, " exceeds limit ", kMaxSectionRawLen);
    for (const Section &s : _sections)
        LECA_CHECK(s.id != id, "duplicate container section id ", id);
    Section s;
    s.id = id;
    s.coder = coder;
    s.predictor = predictor;
    s.aux = aux;
    s.predStride = predStride;
    s.rawLen = rawLen;
    s.encLen = payload.size();
    Fnv1a hash;
    hash.update(payload.data(), payload.size());
    s.checksum = hash.digest();
    _sections.push_back(s);
    _payloads.push_back(std::move(payload));
}

std::vector<std::uint8_t>
ContainerWriter::finish()
{
    std::vector<std::uint8_t> out;
    std::size_t total = kHeaderBytes + _sections.size() * kSectionBytes + 8;
    for (const auto &p : _payloads)
        total += p.size();
    out.reserve(total);
    appendU32(out, kContainerMagic);
    appendU32(out, kContainerVersion);
    appendU32(out, _kind);
    appendU32(out, static_cast<std::uint32_t>(_sections.size()));
    for (const Section &s : _sections) {
        appendU32(out, s.id);
        out.push_back(static_cast<std::uint8_t>(s.coder));
        out.push_back(static_cast<std::uint8_t>(s.predictor));
        out.push_back(static_cast<std::uint8_t>(s.aux & 0xFF));
        out.push_back(static_cast<std::uint8_t>(s.aux >> 8));
        appendU64(out, s.predStride);
        appendU64(out, s.rawLen);
        appendU64(out, s.encLen);
        appendU64(out, s.checksum);
    }
    Fnv1a header_hash;
    header_hash.update(out.data() + 4, out.size() - 4);
    appendU64(out, header_hash.digest());
    for (const auto &p : _payloads)
        out.insert(out.end(), p.begin(), p.end());
    _sections.clear();
    _payloads.clear();
    return out;
}

ContainerReader::ContainerReader(const std::uint8_t *data, std::size_t size)
    : _data(data)
{
    LECA_CHECK(data != nullptr || size == 0,
               "null bitstream of claimed size ", size);
    LECA_CHECK(size >= kHeaderBytes + 8,
               "corrupt bitstream: ", size, " bytes is shorter than the ",
               kHeaderBytes + 8, "-byte minimal container");
    const std::uint32_t magic = loadU32(data);
    LECA_CHECK(magic == kContainerMagic,
               "corrupt bitstream: bad magic word");
    const std::uint32_t version = loadU32(data + 4);
    LECA_CHECK(version == kContainerVersion,
               "unsupported bitstream version ", version, " (expected ",
               kContainerVersion, ")");
    _kind = loadU32(data + 8);
    const std::uint32_t nsections = loadU32(data + 12);
    LECA_CHECK(nsections <= kMaxSections,
               "corrupt bitstream: section count ", nsections,
               " exceeds limit ", kMaxSections);
    const std::size_t table_end =
        kHeaderBytes + static_cast<std::size_t>(nsections) * kSectionBytes;
    LECA_CHECK(size >= table_end + 8,
               "corrupt bitstream: truncated section table (", size,
               " bytes, need ", table_end + 8, ")");

    // The header checksum covers everything from the version word to
    // the end of the table; verify it before trusting any descriptor.
    Fnv1a header_hash;
    header_hash.update(data + 4, table_end - 4);
    const std::uint64_t stored_header = loadU64(data + table_end);
    LECA_CHECK(header_hash.digest() == stored_header,
               "corrupt bitstream: header checksum mismatch");

    _sections.reserve(nsections);
    _offsets.reserve(nsections);
    std::uint64_t payload_total = 0;
    for (std::uint32_t i = 0; i < nsections; ++i) {
        const std::uint8_t *d = data + kHeaderBytes + i * kSectionBytes;
        Section s;
        s.id = loadU32(d);
        const std::uint8_t coder = d[4];
        const std::uint8_t predictor = d[5];
        LECA_CHECK(coder <= static_cast<std::uint8_t>(Coder::Rans),
                   "corrupt bitstream: unknown coder ", int(coder),
                   " in section ", s.id);
        LECA_CHECK(predictor <= static_cast<std::uint8_t>(Predictor::Delta),
                   "corrupt bitstream: unknown predictor ", int(predictor),
                   " in section ", s.id);
        s.coder = static_cast<Coder>(coder);
        s.predictor = static_cast<Predictor>(predictor);
        s.aux = static_cast<std::uint16_t>(
            d[6] | (static_cast<std::uint16_t>(d[7]) << 8));
        s.predStride = loadU64(d + 8);
        s.rawLen = loadU64(d + 16);
        s.encLen = loadU64(d + 24);
        s.checksum = loadU64(d + 32);
        LECA_CHECK(s.rawLen <= kMaxSectionRawLen,
                   "corrupt bitstream: section ", s.id, " rawLen ",
                   s.rawLen, " exceeds limit ", kMaxSectionRawLen);
        LECA_CHECK(s.encLen <= size - table_end - 8,
                   "corrupt bitstream: section ", s.id, " encLen ",
                   s.encLen, " exceeds the container");
        for (const Section &prev : _sections)
            LECA_CHECK(prev.id != s.id,
                       "corrupt bitstream: duplicate section id ", s.id);
        payload_total += s.encLen;
        LECA_CHECK(payload_total <= size - table_end - 8,
                   "corrupt bitstream: payloads overflow the container");
        _sections.push_back(s);
    }
    const std::size_t payload_base = table_end + 8;
    LECA_CHECK(payload_base + payload_total == size,
               "corrupt bitstream: container is ", size, " bytes but the ",
               "table accounts for ", payload_base + payload_total);

    // Every descriptor is now trusted; verify each payload's checksum
    // before any accessor can hand the bytes to a decoder.
    std::size_t offset = payload_base;
    for (const Section &s : _sections) {
        Fnv1a hash;
        hash.update(data + offset, static_cast<std::size_t>(s.encLen));
        LECA_CHECK(hash.digest() == s.checksum,
                   "corrupt bitstream: payload checksum mismatch in "
                   "section ",
                   s.id);
        _offsets.push_back(offset);
        offset += static_cast<std::size_t>(s.encLen);
    }
}

const Section *
ContainerReader::findSection(std::uint32_t id) const
{
    for (const Section &s : _sections)
        if (s.id == id)
            return &s;
    return nullptr;
}

} // namespace leca::bitstream
