/**
 * @file
 * Interleaved byte-wise rANS entropy coder over 8-bit symbols
 * (DESIGN.md §14).
 *
 * This is the classic 32-bit "ryg" construction: state x lives in
 * [2^23, 2^31), symbol probabilities are quantized to a 12-bit scale
 * (4096 slots), and renormalization moves one byte at a time. Two
 * states are interleaved (symbol i uses state i&1) so the decoder's
 * div-free update and the table lookup of adjacent symbols overlap in
 * the pipeline; the streams share one output buffer.
 *
 * Encoding walks the symbols in REVERSE and pushes renormalization
 * bytes forward, then reverses the buffer once at the end — the exact
 * mirror of a decoder that walks forward. The two final states are
 * flushed high-state-first so that, after the reversal, the decoder
 * finds state 0 first, each stored as 4 little-endian bytes.
 *
 * Determinism: the coder is pure serial integer arithmetic with a
 * deterministically normalized frequency table, so the encoded bytes
 * depend only on the input symbols — never on thread count, ISA
 * variant, or host (ROADMAP bit-exactness contract).
 *
 * Every decode-side read is bounds-checked and throws CheckError on
 * truncated or corrupt input; the coder never reads out of bounds.
 */

#ifndef LECA_BITSTREAM_RANS_HH
#define LECA_BITSTREAM_RANS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace leca::bitstream {

/** log2 of the probability scale: frequencies sum to 1 << kProbBits. */
inline constexpr int kProbBits = 12;
inline constexpr std::uint32_t kProbScale = 1u << kProbBits;

/** Lower bound of the normalized rANS state interval [L, 256·L). */
inline constexpr std::uint32_t kRansLowerBound = 1u << 23;

/**
 * Quantized symbol distribution: per-symbol frequencies summing to
 * exactly kProbScale, with every symbol that appears in the input
 * mapped to a non-zero frequency.
 */
struct RansFreqTable
{
    std::array<std::uint16_t, 256> freq{};  //!< slot widths, sum 4096
    std::array<std::uint16_t, 256> cum{};   //!< exclusive prefix sums
};

/**
 * Deterministically quantize raw symbol counts to a kProbScale-total
 * table: present symbols get max(1, round-scaled) slots and any drift
 * is repaid by the largest-frequency symbols (lowest symbol index wins
 * ties), so the same histogram always yields the same table.
 * @p total must equal the sum of @p counts and be non-zero.
 */
RansFreqTable normalizeFreqs(const std::array<std::uint64_t, 256> &counts,
                             std::uint64_t total);

/**
 * Serialize the non-zero entries of @p table in ascending symbol
 * order: u16 nsym, then nsym × (u8 symbol, u16 freq), little-endian.
 * Appended to @p out; the compact form costs 2 + 3·nsym bytes.
 */
void appendFreqTable(const RansFreqTable &table,
                     std::vector<std::uint8_t> &out);

/**
 * Parse a table serialized by appendFreqTable from @p data, validating
 * strictly ascending symbols, non-zero frequencies, and an exact
 * kProbScale sum (CheckError otherwise). Returns bytes consumed.
 */
std::size_t parseFreqTable(const std::uint8_t *data, std::size_t size,
                           RansFreqTable &table);

/**
 * Encode @p n symbols with 2-way interleaved rANS under @p table
 * (which must give every present symbol a non-zero frequency),
 * appending the coded bytes — renormalization stream plus two 4-byte
 * final states — to @p out.
 */
void ransEncode(const std::uint8_t *data, std::size_t n,
                const RansFreqTable &table, std::vector<std::uint8_t> &out);

/**
 * Decode exactly @p n symbols from @p size coded bytes into @p out.
 * Throws CheckError if the payload is truncated or does not leave the
 * decoder states back at their initial value (tamper evidence beyond
 * the container checksums).
 */
void ransDecode(const std::uint8_t *data, std::size_t size,
                const RansFreqTable &table, std::uint8_t *out,
                std::size_t n);

/**
 * Shannon entropy of the byte stream in bits per symbol (0 for empty
 * input) — the lower bound any order-0 coder can reach, reported by
 * bench/codec_corpus next to achieved bpp.
 */
double shannonEntropyBits(const std::uint8_t *data, std::size_t n);

} // namespace leca::bitstream

#endif // LECA_BITSTREAM_RANS_HH
