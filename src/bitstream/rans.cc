#include "bitstream/rans.hh"

#include <algorithm>
#include <cmath>

#include "util/check.hh"

namespace leca::bitstream {

namespace {

/** Largest-frequency symbol, lowest index winning ties. */
int
largestSymbol(const std::array<std::uint16_t, 256> &freq, bool above_one)
{
    int best = -1;
    std::uint16_t best_f = above_one ? 1 : 0;
    for (int s = 0; s < 256; ++s) {
        if (freq[s] > best_f) {
            best_f = freq[s];
            best = s;
        }
    }
    return best;
}

} // namespace

RansFreqTable
normalizeFreqs(const std::array<std::uint64_t, 256> &counts,
               std::uint64_t total)
{
    LECA_CHECK(total > 0, "normalizeFreqs over an empty histogram");
    RansFreqTable table;
    std::uint64_t sum = 0;
    for (int s = 0; s < 256; ++s) {
        if (counts[s] == 0)
            continue;
        std::uint64_t f = (counts[s] * kProbScale + total / 2) / total;
        if (f == 0)
            f = 1;
        table.freq[s] = static_cast<std::uint16_t>(f);
        sum += f;
    }
    // Repay rounding drift from the heaviest symbols: they lose the
    // least coding efficiency per slot, and picking the lowest index
    // among ties keeps the table a pure function of the histogram.
    while (sum > kProbScale) {
        const int s = largestSymbol(table.freq, /*above_one=*/true);
        LECA_CHECK(s >= 0, "normalizeFreqs cannot shrink table further");
        const std::uint64_t dec =
            std::min<std::uint64_t>(sum - kProbScale, table.freq[s] - 1u);
        table.freq[s] = static_cast<std::uint16_t>(table.freq[s] - dec);
        sum -= dec;
    }
    if (sum < kProbScale) {
        const int s = largestSymbol(table.freq, /*above_one=*/false);
        LECA_CHECK(s >= 0, "normalizeFreqs over an empty histogram");
        table.freq[s] =
            static_cast<std::uint16_t>(table.freq[s] + (kProbScale - sum));
    }
    std::uint32_t cum = 0;
    for (int s = 0; s < 256; ++s) {
        table.cum[s] = static_cast<std::uint16_t>(cum);
        cum += table.freq[s];
    }
    return table;
}

void
appendFreqTable(const RansFreqTable &table, std::vector<std::uint8_t> &out)
{
    int nsym = 0;
    for (int s = 0; s < 256; ++s)
        nsym += table.freq[s] != 0;
    out.push_back(static_cast<std::uint8_t>(nsym & 0xFF));
    out.push_back(static_cast<std::uint8_t>((nsym >> 8) & 0xFF));
    for (int s = 0; s < 256; ++s) {
        if (table.freq[s] == 0)
            continue;
        out.push_back(static_cast<std::uint8_t>(s));
        out.push_back(static_cast<std::uint8_t>(table.freq[s] & 0xFF));
        out.push_back(static_cast<std::uint8_t>(table.freq[s] >> 8));
    }
}

std::size_t
parseFreqTable(const std::uint8_t *data, std::size_t size,
               RansFreqTable &table)
{
    LECA_CHECK(size >= 2, "corrupt bitstream: rANS table header truncated");
    const std::uint32_t nsym =
        static_cast<std::uint32_t>(data[0])
        | (static_cast<std::uint32_t>(data[1]) << 8);
    LECA_CHECK(nsym >= 1 && nsym <= 256,
               "corrupt bitstream: rANS table claims ", nsym, " symbols");
    const std::size_t need = 2 + static_cast<std::size_t>(nsym) * 3;
    LECA_CHECK(size >= need,
               "corrupt bitstream: rANS table truncated (need ", need,
               " bytes, have ", size, ")");
    table = RansFreqTable{};
    std::uint32_t sum = 0;
    int prev = -1;
    for (std::uint32_t i = 0; i < nsym; ++i) {
        const std::uint8_t *e = data + 2 + i * 3;
        const int sym = e[0];
        const std::uint32_t f = static_cast<std::uint32_t>(e[1])
                                | (static_cast<std::uint32_t>(e[2]) << 8);
        LECA_CHECK(sym > prev,
                   "corrupt bitstream: rANS table symbols not ascending");
        LECA_CHECK(f >= 1 && f <= kProbScale,
                   "corrupt bitstream: rANS frequency ", f,
                   " out of range for symbol ", sym);
        table.freq[sym] = static_cast<std::uint16_t>(f);
        sum += f;
        prev = sym;
    }
    LECA_CHECK(sum == kProbScale, "corrupt bitstream: rANS frequencies sum ",
               sum, ", expected ", kProbScale);
    std::uint32_t cum = 0;
    for (int s = 0; s < 256; ++s) {
        table.cum[s] = static_cast<std::uint16_t>(cum);
        cum += table.freq[s];
    }
    return need;
}

void
ransEncode(const std::uint8_t *data, std::size_t n,
           const RansFreqTable &table, std::vector<std::uint8_t> &out)
{
    const std::size_t base = out.size();
    std::uint32_t x[2] = {kRansLowerBound, kRansLowerBound};
    // Walk the symbols backwards; the buffer is reversed at the end so
    // the decoder consumes them forwards. Symbol i always uses state
    // i & 1 on both sides.
    for (std::size_t i = n; i-- > 0;) {
        const std::uint8_t s = data[i];
        const std::uint32_t f = table.freq[s];
        LECA_DCHECK(f > 0, "ransEncode symbol ", int(s),
                    " has zero frequency");
        std::uint32_t &r = x[i & 1];
        const std::uint32_t x_max =
            ((kRansLowerBound >> kProbBits) << 8) * f;
        while (r >= x_max) {
            out.push_back(static_cast<std::uint8_t>(r & 0xFF));
            r >>= 8;
        }
        r = ((r / f) << kProbBits) + (r % f) + table.cum[s];
    }
    // Flush state 1 then state 0, each high byte first, so after the
    // reversal the stream opens with state 0 as 4 little-endian bytes.
    for (int k = 1; k >= 0; --k) {
        out.push_back(static_cast<std::uint8_t>(x[k] >> 24));
        out.push_back(static_cast<std::uint8_t>(x[k] >> 16));
        out.push_back(static_cast<std::uint8_t>(x[k] >> 8));
        out.push_back(static_cast<std::uint8_t>(x[k] & 0xFF));
    }
    std::reverse(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
}

void
ransDecode(const std::uint8_t *data, std::size_t size,
           const RansFreqTable &table, std::uint8_t *out, std::size_t n)
{
    LECA_CHECK(size >= 8,
               "corrupt bitstream: rANS payload too short for state init (",
               size, " bytes)");
    // slot -> symbol lookup; the table was validated to sum to 4096.
    std::array<std::uint8_t, kProbScale> slot2sym;
    for (int s = 0; s < 256; ++s)
        std::fill_n(slot2sym.begin() + table.cum[s], table.freq[s],
                    static_cast<std::uint8_t>(s));
    std::size_t pos = 0;
    std::uint32_t x[2];
    for (int k = 0; k < 2; ++k) {
        x[k] = (static_cast<std::uint32_t>(data[pos]) << 0)
               | (static_cast<std::uint32_t>(data[pos + 1]) << 8)
               | (static_cast<std::uint32_t>(data[pos + 2]) << 16)
               | (static_cast<std::uint32_t>(data[pos + 3]) << 24);
        pos += 4;
    }
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t &r = x[i & 1];
        const std::uint32_t slot = r & (kProbScale - 1);
        const std::uint8_t s = slot2sym[slot];
        out[i] = s;
        r = table.freq[s] * (r >> kProbBits) + slot - table.cum[s];
        while (r < kRansLowerBound) {
            LECA_CHECK(pos < size,
                       "corrupt bitstream: rANS renormalization past the "
                       "end (byte ",
                       pos, " of ", size, ")");
            r = (r << 8) | data[pos++];
        }
    }
    // A clean stream parks both states back at the lower bound and
    // consumes every byte — any residue means the payload was tampered
    // with in a way the per-section checksum should have caught.
    LECA_CHECK(x[0] == kRansLowerBound && x[1] == kRansLowerBound,
               "corrupt bitstream: rANS final state mismatch");
    LECA_CHECK(pos == size, "corrupt bitstream: rANS payload has ",
               size - pos, " trailing bytes");
}

double
shannonEntropyBits(const std::uint8_t *data, std::size_t n)
{
    if (n == 0)
        return 0.0;
    std::array<std::uint64_t, 256> counts{};
    for (std::size_t i = 0; i < n; ++i)
        ++counts[data[i]];
    double bits = 0.0;
    for (int s = 0; s < 256; ++s) {
        if (counts[s] == 0)
            continue;
        const double p = static_cast<double>(counts[s])
                         / static_cast<double>(n);
        bits -= p * std::log2(p);
    }
    return bits;
}

} // namespace leca::bitstream
