/**
 * @file
 * Versioned, checksummed container for entropy-coded payloads
 * (DESIGN.md §14) — the wire-format sibling of serialize v2.
 *
 * Layout (all fields little-endian):
 *
 *   u32 magic 'LcBs' | u32 version | u32 kind | u32 nsections
 *   nsections × section descriptor (40 bytes):
 *       u32 id | u8 coder | u8 predictor | u16 aux
 *       u64 predStride | u64 rawLen | u64 encLen | u64 payload FNV-1a
 *   u64 header FNV-1a (over every byte after the magic word)
 *   concatenated payloads, in table order
 *
 * ContainerReader validates EVERYTHING up front — magic, version,
 * section count and descriptor ranges, exact total size, the header
 * checksum, and every per-section payload checksum — before handing
 * out a single payload pointer. Decoders built on top of it therefore
 * never index unvalidated bytes; tools/leca_lint.py's
 * bitstream-unvalidated-read rule enforces that raw reads in this
 * subsystem only appear behind such validation (marked
 * `leca-lint: bitstream-validated`). Any corruption — truncation at
 * any boundary, bit flips, oversized length fields — raises
 * leca::CheckError; reads past the buffer cannot happen.
 */

#ifndef LECA_BITSTREAM_CONTAINER_HH
#define LECA_BITSTREAM_CONTAINER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace leca::bitstream {

/** Magic word opening every LeCA bitstream ("LcBs" in LE byte order). */
inline constexpr std::uint32_t kContainerMagic = 0x7342634CU;
/** Current container format version. */
inline constexpr std::uint32_t kContainerVersion = 1;
/** Upper bound on sections per container (corruption tripwire). */
inline constexpr std::uint32_t kMaxSections = 1024;
/** Upper bound on a single section's decoded size (tripwire: 1 GiB). */
inline constexpr std::uint64_t kMaxSectionRawLen = 1ULL << 30;

/** Entropy-coding stage applied to a section's payload. */
enum class Coder : std::uint8_t {
    Raw = 0,     //!< payload is the decoded bytes verbatim
    Packed = 1,  //!< fixed-width bit packing; width in Section::aux
    Rans = 2,    //!< freq table + interleaved rANS stream (rans.hh)
};

/** Reversible modeling pass applied before the coder. */
enum class Predictor : std::uint8_t {
    None = 0,
    Delta = 1,  //!< byte[i] -= byte[i - predStride], mod 256
};

/** One logical payload inside a container (codes, scales, meta...). */
struct Section
{
    std::uint32_t id = 0;
    Coder coder = Coder::Raw;
    Predictor predictor = Predictor::None;
    std::uint16_t aux = 0;        //!< coder parameter (packed bit width)
    std::uint64_t predStride = 0; //!< delta distance in bytes
    std::uint64_t rawLen = 0;     //!< decoded payload length
    std::uint64_t encLen = 0;     //!< stored payload length
    std::uint64_t checksum = 0;   //!< FNV-1a over the stored payload
};

/** FNV-1a, identical constants to serialize v2's checkpoint hash. */
class Fnv1a
{
  public:
    void
    update(const void *bytes, std::size_t count)
    {
        const auto *p = static_cast<const unsigned char *>(bytes);
        for (std::size_t i = 0; i < count; ++i) {
            _state ^= p[i];
            _state *= 0x100000001B3ULL;
        }
    }

    std::uint64_t digest() const { return _state; }

  private:
    std::uint64_t _state = 0xCBF29CE484222325ULL;
};

/** Accumulates sections, then emits the framed container bytes. */
class ContainerWriter
{
  public:
    explicit ContainerWriter(std::uint32_t kind) : _kind(kind) {}

    /** Append a section; @p payload is the already-coded bytes. */
    void addSection(std::uint32_t id, Coder coder, Predictor predictor,
                    std::uint16_t aux, std::uint64_t predStride,
                    std::uint64_t rawLen, std::vector<std::uint8_t> payload);

    /** Frame header + table + payloads; leaves the writer empty. */
    std::vector<std::uint8_t> finish();

  private:
    std::uint32_t _kind;
    std::vector<Section> _sections;
    std::vector<std::vector<std::uint8_t>> _payloads;
};

/**
 * Parses and fully validates a container over a borrowed buffer (the
 * buffer must outlive the reader). The constructor performs every
 * check; accessors after it are safe by construction.
 */
class ContainerReader
{
  public:
    ContainerReader(const std::uint8_t *data, std::size_t size);

    std::uint32_t kind() const { return _kind; }
    std::size_t sectionCount() const { return _sections.size(); }
    const Section &section(std::size_t i) const { return _sections[i]; }

    /** Validated payload bytes of section @p i (encLen of them). */
    const std::uint8_t *payload(std::size_t i) const
    {
        return _data + _offsets[i];
    }

    /** Section with @p id, or nullptr when absent. */
    const Section *findSection(std::uint32_t id) const;

  private:
    const std::uint8_t *_data;
    std::uint32_t _kind = 0;
    std::vector<Section> _sections;
    std::vector<std::size_t> _offsets;  //!< payload start per section
};

} // namespace leca::bitstream

#endif // LECA_BITSTREAM_CONTAINER_HH
