/**
 * @file
 * Event counters collected while simulating a frame through the LeCA
 * sensor. The energy model (src/energy) turns these counts into pJ.
 */

#ifndef LECA_HW_STATS_HH
#define LECA_HW_STATS_HH

#include <cstdint>
#include <map>

namespace leca {

/** Per-frame activity counters of the whole sensor chip. */
struct ChipStats
{
    std::int64_t pixelReads = 0;    //!< pixel readout events
    std::int64_t iBufferWrites = 0; //!< analog i-buffer writes
    std::int64_t macOps = 0;        //!< SCM sample/transfer cycles
    /** ADC conversions bucketed by resolution (bits -> count). */
    std::map<double, std::int64_t> adcConversions;
    std::int64_t localSramWriteBits = 0;
    std::int64_t localSramReadBits = 0;
    std::int64_t globalSramReadBits = 0;
    std::int64_t globalSramWriteBits = 0;
    std::int64_t outputLinkBits = 0; //!< serial interface traffic

    /** Total conversion events across all resolutions. */
    std::int64_t
    totalAdcConversions() const
    {
        std::int64_t total = 0;
        for (const auto &[bits, count] : adcConversions)
            total += count;
        return total;
    }

    ChipStats &
    operator+=(const ChipStats &other)
    {
        pixelReads += other.pixelReads;
        iBufferWrites += other.iBufferWrites;
        macOps += other.macOps;
        for (const auto &[bits, count] : other.adcConversions)
            adcConversions[bits] += count;
        localSramWriteBits += other.localSramWriteBits;
        localSramReadBits += other.localSramReadBits;
        globalSramReadBits += other.globalSramReadBits;
        globalSramWriteBits += other.globalSramWriteBits;
        outputLinkBits += other.outputLinkBits;
        return *this;
    }
};

} // namespace leca

#endif // LECA_HW_STATS_HH
