/**
 * @file
 * The complete LeCA sensor chip (Fig. 3(b)): pixel array + column-
 * parallel PE array + ADC array + global SRAM + controllers, with the
 * row-by-row dataflow and repetitive readout of Sec. 4.1/4.2.
 */

#ifndef LECA_HW_SENSOR_CHIP_HH
#define LECA_HW_SENSOR_CHIP_HH

#include <cstdint>
#include <vector>

#include "hw/pe.hh"
#include "hw/stats.hh"
#include "sensor/pixel_array.hh"

namespace leca {

/** Static configuration of a LeCA sensor chip instance. */
struct ChipConfig
{
    int rgbHeight = 224;          //!< RGB frame height (raw = 2x)
    int rgbWidth = 224;           //!< RGB frame width (raw = 2x)
    CircuitConfig circuit;        //!< analog PE parameters
    SensorConfig sensor;          //!< pixel front-end parameters
    QBits qbits{3.0};             //!< ADC resolution (Q_bit)
    double adcFullScale = 0.35;   //!< programmable ADC boundary (V)
    bool monteCarlo = true;       //!< sample per-PE device mismatch
    std::uint64_t mcSeed = 2023;  //!< die seed
};

/**
 * Frame-level simulator of the LeCA sensor.
 *
 * encodeFrame() runs the exact hardware schedule: for every band of 4
 * raw rows and every kernel group (repetitive readout when Nch > 4),
 * rows are read out once, buffered per-PE, multiplied against the
 * local-SRAM weights, locally reduced on the o-buffers, and converted
 * by the per-PE ADC after the fourth row.
 */
class LecaSensorChip
{
  public:
    explicit LecaSensorChip(const ChipConfig &config);

    /** Program the encoder kernels (global SRAM). */
    void loadKernels(std::vector<FlatKernel> kernels);

    /** Number of programmed output channels. */
    int nch() const { return static_cast<int>(_kernels.size()); }

    /**
     * Capture an RGB scene and run the LeCA encode.
     *
     * @param rgb_scene    [3, rgbHeight, rgbWidth] in [0,1]
     * @param mode         analog fidelity (ideal / real / real+noise)
     * @param rng          noise stream (sensor + analog)
     * @param sensor_noise add pixel shot/read noise
     * @return ADC codes as floats, [Nch, rgbHeight/2, rgbWidth/2]
     */
    Tensor encodeFrame(const Tensor &rgb_scene, PeMode mode, Rng &rng,
                       bool sensor_noise = true);

    /**
     * Normal sensing mode (Sec. 4.3): pixels bypass the PE and are
     * digitized at 8 bits. Returns the quantized raw frame
     * [2 rgbHeight, 2 rgbWidth] in [0,1] steps of 1/255.
     */
    Tensor normalModeCapture(const Tensor &rgb_scene, Rng &rng,
                             bool sensor_noise = true);

    /** Map ADC codes to features in [-1, 1] for the decoder. */
    Tensor codesToFeatures(const Tensor &codes) const;

    /** Aggregate chip + PE activity since the last reset. */
    ChipStats stats() const;
    void resetStats();

    const ChipConfig &config() const { return _config; }
    int peCount() const { return static_cast<int>(_pes.size()); }
    Pe &pe(int i) { return _pes[static_cast<std::size_t>(i)]; }

  private:
    ChipConfig _config;
    PixelArray _pixelArray;
    std::vector<Pe> _pes;
    std::vector<FlatKernel> _kernels;
    ChipStats _chipStats; //!< chip-level counters (pixels, SRAM, link)
};

} // namespace leca

#endif // LECA_HW_SENSOR_CHIP_HH
