/**
 * @file
 * Dual-clock controller schedule (Fig. 6(b)): the slow controller-s
 * (100 MHz) sequences pixel readout, local-SRAM weight writes and
 * i-buffer writes; the fast controller-f (400 MHz) runs the 16-MAC SCM
 * burst per row and triggers the next row; after four rows the ofmap
 * is fetched through the ADC into the global SRAM.
 *
 * BandScheduler emits the explicit timed event trace of one 4-row band
 * so the operation sequence of Sec. 4.2 can be inspected, printed, and
 * cross-checked against the closed-form TimingModel.
 */

#ifndef LECA_HW_CONTROLLER_HH
#define LECA_HW_CONTROLLER_HH

#include <string>
#include <vector>

#include "hw/timing.hh"

namespace leca {

/** Which unit performs a scheduled operation. */
enum class ScheduleUnit
{
    RowScanner, //!< ROWSEL / pixel readout
    ControllerS,//!< 100 MHz slow controller
    ControllerF,//!< 400 MHz fast controller
    AdcArray    //!< ofmap fetch through the ADC
};

/** One timed operation in the band schedule. */
struct ScheduleEvent
{
    double startNs;
    double endNs;
    ScheduleUnit unit;
    std::string action;

    double durationNs() const { return endNs - startNs; }
};

/** Printable name of a schedule unit. */
std::string scheduleUnitName(ScheduleUnit unit);

/** Generates the Fig. 6(b) event trace for one 4-row band. */
class BandScheduler
{
  public:
    explicit BandScheduler(TimingConfig config = TimingConfig{});

    /** The full, time-ordered event list of one band. */
    std::vector<ScheduleEvent> schedule() const;

    /** End time of the band (must equal TimingModel::bandLatencyNs). */
    double bandEndNs() const;

    /**
     * True when every local-SRAM weight write lies entirely inside its
     * row's ROWSEL window (the latency-hiding invariant of step 1).
     */
    bool sramWritesHidden() const;

    /**
     * Duration actually needed by 16 MAC cycles at the 400 MHz fast
     * clock; must fit inside the budgeted MAC burst slot.
     */
    double macCyclesNs() const { return 16.0 * 2.5; }

    const TimingConfig &config() const { return _config; }

  private:
    TimingConfig _config;
};

} // namespace leca

#endif // LECA_HW_CONTROLLER_HH
