/**
 * @file
 * Operation-sequence timing model of the LeCA sensor (Sec. 4.2,
 * Fig. 6(b)): a slow 100 MHz controller-s and a fast 400 MHz
 * controller-f coordinate pixel readout, i-buffer writes, the
 * 16-MAC SCM burst per row, and the ofmap fetch after every 4 rows.
 *
 * Reproduced headline numbers: 209 fps at 448x448 (Nch <= 4) and
 * ~86 fps at 1080p (Sec. 6.4).
 */

#ifndef LECA_HW_TIMING_HH
#define LECA_HW_TIMING_HH

namespace leca {

/** Phase durations from the paper's timing diagram (nanoseconds). */
struct TimingConfig
{
    double pixelRowReadoutNs = 10350.0; //!< rolling-shutter row readout
    double iBufferWriteNs = 30.0;       //!< 4 analog i-buffer writes
    double macBurstNs = 250.0;          //!< 16 MACs at 400 MHz + margin
    double ofmapFetchNs = 200.0;        //!< o-buffer -> ADC -> SRAM
    double localSramWriteNs = 500.0;    //!< hidden behind row readout
    double adcCycleNs = 62.5;           //!< one normal-mode ADC cycle
};

/** Frame-latency / frame-rate estimator. */
class TimingModel
{
  public:
    explicit TimingModel(TimingConfig config = TimingConfig{})
        : _config(config)
    {
    }

    /**
     * Latency of one LeCA-encoded frame in microseconds.
     *
     * @param raw_rows  pixel-array height (448 for the default chip)
     * @param nch       output channels; Nch > 4 triggers repetitive
     *                  readout (each 4-row band re-read per kernel
     *                  group, Sec. 4.2 step 4)
     */
    double frameLatencyUs(int raw_rows, int nch) const;

    /** LeCA-mode frames per second. */
    double framesPerSecond(int raw_rows, int nch) const;

    /**
     * Latency of one row band (4 rows + ofmap fetch) in nanoseconds.
     */
    double bandLatencyNs() const;

    /** Normal (bypass) mode frame latency in microseconds. */
    double normalFrameLatencyUs(int raw_rows) const;

    /**
     * True when the local SRAM write is hidden behind the pixel row
     * readout (Sec. 4.2 step 1) — an invariant of the design.
     */
    bool sramWriteHidden() const;

    const TimingConfig &config() const { return _config; }

  private:
    TimingConfig _config;
};

} // namespace leca

#endif // LECA_HW_TIMING_HH
