#include "pe.hh"

#include "util/check.hh"

namespace leca {

Pe::Pe(const CircuitConfig &config)
    : _chain(AnalogChain::nominal(config)),
      _oBuffers(4, DiffBuffer(config.vCm))
{
}

Pe::Pe(const CircuitConfig &config, Rng &mc_rng)
    : _chain(AnalogChain::sample(config, mc_rng)),
      _oBuffers(4, DiffBuffer(config.vCm))
{
    // The paper calibrates ADC offset digitally (Sec. 4.4).
    _chain.adc.calibrate();
}

void
Pe::configureAdc(QBits qbits, double full_scale)
{
    _chain.adc.configure(qbits, full_scale);
}

void
Pe::startBlock()
{
    _oBuffers.assign(4, DiffBuffer(_chain.config.vCm));
}

void
Pe::loadRow(const std::array<double, 4> &pixel_voltages)
{
    _iBuffer = pixel_voltages;
    _stats.iBufferWrites += 4;
}

void
Pe::loadWeights(const std::vector<FlatKernel> &kernels, int kernel_base,
                int kernel_count, int row_in_block)
{
    LECA_CHECK(kernel_count >= 1 && kernel_count <= 4,
                "PE supports at most 4 kernels per pass");
    LECA_CHECK(row_in_block >= 0 && row_in_block < 4, "bad block row");
    for (int k = 0; k < kernel_count; ++k) {
        const FlatKernel &kernel =
            kernels[static_cast<std::size_t>(kernel_base + k)];
        for (int c = 0; c < 4; ++c) {
            _localSram[static_cast<std::size_t>(k) * 4 + c] =
                kernel.taps[static_cast<std::size_t>(row_in_block) * 4 + c];
        }
    }
    // 16 x 5-bit write from global SRAM (hidden behind pixel readout).
    _stats.localSramWriteBits += 16 * 5;
    _stats.globalSramReadBits += 16 * 5;
}

double
Pe::applyPsf(double v_pixel, PeMode mode, Rng *noise_rng) const
{
    switch (mode) {
      case PeMode::Ideal:
        return _chain.psf.linearModel(v_pixel);
      case PeMode::Real:
        return _chain.psf.transfer(v_pixel);
      case PeMode::RealNoisy:
        LECA_CHECK(noise_rng, "RealNoisy mode needs a noise stream");
        return _chain.psf.transferNoisy(v_pixel, *noise_rng);
    }
    return v_pixel;
}

void
Pe::processRow(int kernel_count, PeMode mode, Rng *noise_rng)
{
    LECA_CHECK(kernel_count >= 1 && kernel_count <= 4,
                "bad kernel count");
    // Kernels consecutively, i-buffer entries cyclically (Fig. 5(c)).
    for (int k = 0; k < kernel_count; ++k) {
        DiffBuffer &obuf = _oBuffers[static_cast<std::size_t>(k)];
        for (int c = 0; c < 4; ++c) {
            const ScmWeight &w =
                _localSram[static_cast<std::size_t>(k) * 4 + c];
            _stats.localSramReadBits += 5;
            ++_stats.macOps;
            if (w.magnitude == 0)
                continue;
            const double v_in =
                applyPsf(_iBuffer[static_cast<std::size_t>(c)], mode,
                         noise_rng);
            double &rail = w.negative ? obuf.vMinus : obuf.vPlus;
            if (mode == PeMode::Ideal) {
                rail = ScMultiplier::idealStep(
                    _chain.config, rail, v_in,
                    _chain.scm.idealCapFf(w.magnitude));
            } else {
                rail = _chain.scm.step(
                    rail, v_in, w.magnitude,
                    mode == PeMode::RealNoisy ? noise_rng : nullptr);
            }
        }
    }
}

std::vector<int>
Pe::readOfmap(int kernel_count, PeMode mode, Rng *noise_rng)
{
    std::vector<int> codes(static_cast<std::size_t>(kernel_count));
    for (int k = 0; k < kernel_count; ++k) {
        const DiffBuffer &obuf = _oBuffers[static_cast<std::size_t>(k)];
        double plus = obuf.vPlus, minus = obuf.vMinus;
        switch (mode) {
          case PeMode::Ideal:
            plus = _chain.fvf.linearModel(plus);
            minus = _chain.fvf.linearModel(minus);
            break;
          case PeMode::Real:
            plus = _chain.fvf.transfer(plus);
            minus = _chain.fvf.transfer(minus);
            break;
          case PeMode::RealNoisy:
            LECA_CHECK(noise_rng, "RealNoisy mode needs a noise stream");
            plus = _chain.fvf.transferNoisy(plus, *noise_rng);
            minus = _chain.fvf.transferNoisy(minus, *noise_rng);
            break;
        }
        codes[static_cast<std::size_t>(k)] = _chain.adc.convert(
            plus - minus,
            mode == PeMode::RealNoisy ? noise_rng : nullptr);
        ++_stats.adcConversions[_chain.adc.qbits().bits()];
    }
    return codes;
}

double
Pe::obufferDiff(int k) const
{
    LECA_CHECK(k >= 0 && k < 4, "o-buffer index out of range");
    return _oBuffers[static_cast<std::size_t>(k)].diff();
}

} // namespace leca
