#include "sensor_chip.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "sensor/bayer.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

LecaSensorChip::LecaSensorChip(const ChipConfig &config)
    : _config(config),
      _pixelArray(config.sensor, 2 * config.rgbHeight, 2 * config.rgbWidth)
{
    LECA_CHECK(config.rgbHeight % 2 == 0 && config.rgbWidth % 2 == 0,
                "RGB frame extents must be even");
    const int pe_count = (2 * config.rgbWidth) / 4;
    _pes.reserve(static_cast<std::size_t>(pe_count));
    Rng mc(config.mcSeed);
    for (int i = 0; i < pe_count; ++i) {
        if (config.monteCarlo) {
            _pes.emplace_back(config.circuit, mc);
        } else {
            _pes.emplace_back(config.circuit);
        }
        _pes.back().configureAdc(config.qbits, config.adcFullScale);
    }
}

void
LecaSensorChip::loadKernels(std::vector<FlatKernel> kernels)
{
    LECA_CHECK(!kernels.empty(), "need at least one kernel");
    _kernels = std::move(kernels);
    // Programming the encoder writes Nch x 16 x 5 bits of global SRAM.
    _chipStats.globalSramWriteBits +=
        static_cast<std::int64_t>(_kernels.size()) * 16 * 5;
}

Tensor
LecaSensorChip::encodeFrame(const Tensor &rgb_scene, PeMode mode, Rng &rng,
                            bool sensor_noise)
{
    LECA_CHECK(!_kernels.empty(), "kernels not programmed");
    LECA_CHECK(rgb_scene.dim() == 3 && rgb_scene.size(0) == 3 &&
                rgb_scene.size(1) == _config.rgbHeight &&
                rgb_scene.size(2) == _config.rgbWidth,
                "scene shape mismatch");

    const Tensor raw = mosaic(rgb_scene);
    _pixelArray.expose(raw, rng, sensor_noise);

    const int raw_rows = _pixelArray.rows();
    const int raw_cols = _pixelArray.cols();
    const int of_h = raw_rows / 4;
    const int of_w = raw_cols / 4;
    const int nch = static_cast<int>(_kernels.size());
    const int passes = (nch + 3) / 4;

    Tensor ofmap({nch, of_h, of_w});
    Rng *noise_rng = mode == PeMode::RealNoisy ? &rng : nullptr;

    const int pe_count = static_cast<int>(_pes.size());
    for (int band = 0; band < of_h; ++band) {
        for (int pass = 0; pass < passes; ++pass) {
            const int kernel_base = pass * 4;
            const int kernel_count = std::min(4, nch - kernel_base);
            // Prefetch the band's four rows so the per-PE column sweep
            // below has no shared readout state.
            std::array<std::vector<double>, 4> band_voltages;
            for (int r = 0; r < 4; ++r) {
                band_voltages[static_cast<std::size_t>(r)] =
                    _pixelArray.readRowVoltages(band * 4 + r);
                _chipStats.pixelReads += raw_cols;
            }
            // One noise stream per PE, forked serially before the
            // parallel region: the stream a PE consumes depends only on
            // its column index, keeping noisy captures bit-identical
            // for every thread count.
            std::vector<Rng> pe_rngs;
            if (noise_rng)
                pe_rngs = Rng::split(
                    *noise_rng, static_cast<std::size_t>(pe_count));
            parallelFor(0, pe_count, 1,
                        [&](std::int64_t p0, std::int64_t p1) {
                for (int p = static_cast<int>(p0); p < p1; ++p) {
                    Pe &pe = _pes[static_cast<std::size_t>(p)];
                    Rng *pe_rng = noise_rng
                                      ? &pe_rngs[static_cast<std::size_t>(p)]
                                      : nullptr;
                    pe.startBlock();
                    for (int r = 0; r < 4; ++r) {
                        const auto &voltages =
                            band_voltages[static_cast<std::size_t>(r)];
                        pe.loadWeights(_kernels, kernel_base, kernel_count,
                                       r);
                        pe.loadRow(
                            {voltages[static_cast<std::size_t>(4 * p)],
                             voltages[static_cast<std::size_t>(4 * p + 1)],
                             voltages[static_cast<std::size_t>(4 * p + 2)],
                             voltages[static_cast<std::size_t>(4 * p + 3)]});
                        pe.processRow(kernel_count, mode, pe_rng);
                    }
                    const auto codes =
                        pe.readOfmap(kernel_count, mode, pe_rng);
                    for (int k = 0; k < kernel_count; ++k) {
                        ofmap.at(kernel_base + k, band, p) =
                            static_cast<float>(
                                codes[static_cast<std::size_t>(k)]);
                    }
                }
            });
        }
    }

    // Quantized ofmap goes through the global SRAM and off-chip.
    const double bits = _config.qbits.bits();
    const auto ofmap_bits = static_cast<std::int64_t>(
        std::llround(static_cast<double>(ofmap.numel()) * bits));
    _chipStats.globalSramWriteBits += ofmap_bits;
    _chipStats.globalSramReadBits += ofmap_bits;
    _chipStats.outputLinkBits += ofmap_bits;
    return ofmap;
}

Tensor
LecaSensorChip::normalModeCapture(const Tensor &rgb_scene, Rng &rng,
                                  bool sensor_noise)
{
    const Tensor raw = mosaic(rgb_scene);
    _pixelArray.expose(raw, rng, sensor_noise);
    const int rows = _pixelArray.rows(), cols = _pixelArray.cols();
    Tensor out({rows, cols});
    const SensorConfig &sc = _config.sensor;
    parallelFor(0, rows, 1, [&](std::int64_t r0, std::int64_t r1) {
        for (int r = static_cast<int>(r0); r < r1; ++r) {
            const auto voltages = _pixelArray.readRowVoltages(r);
            for (int c = 0; c < cols; ++c) {
                const int code = quantizeCode(
                    static_cast<float>(sc.voltageToDigital(
                        voltages[static_cast<std::size_t>(c)])),
                    0.0f, 1.0f, 256);
                out.at(r, c) = static_cast<float>(code) / 255.0f;
            }
        }
    });
    _chipStats.pixelReads += static_cast<std::int64_t>(rows) * cols;
    // All pixels digitized at 8 bits, stored, and streamed out.
    const std::int64_t pixels = static_cast<std::int64_t>(rows) * cols;
    _chipStats.adcConversions[8.0] += pixels;
    _chipStats.globalSramWriteBits += pixels * 8;
    _chipStats.globalSramReadBits += pixels * 8;
    _chipStats.outputLinkBits += pixels * 8;
    return out;
}

Tensor
LecaSensorChip::codesToFeatures(const Tensor &codes) const
{
    const int levels = _config.qbits.levels();
    Tensor features(codes.shape());
    for (std::size_t i = 0; i < codes.numel(); ++i) {
        features[i] = 2.0f * codes[i] / static_cast<float>(levels - 1)
                      - 1.0f;
    }
    return features;
}

ChipStats
LecaSensorChip::stats() const
{
    ChipStats total = _chipStats;
    for (const auto &pe : _pes)
        total += pe.stats();
    return total;
}

void
LecaSensorChip::resetStats()
{
    _chipStats = ChipStats{};
    for (auto &pe : _pes)
        pe.resetStats();
}

} // namespace leca
