#include "weights.hh"

#include <algorithm>
#include <cmath>

#include "util/check.hh"

namespace leca {

ScmWeight
quantizeWeight(float w, float w_scale, int dac_steps)
{
    LECA_CHECK(w_scale > 0.0f, "weight scale must be positive");
    const float normalized = std::abs(w) / w_scale;
    int mag = static_cast<int>(
        std::lround(normalized * static_cast<float>(dac_steps)));
    mag = std::clamp(mag, 0, dac_steps);
    return ScmWeight{mag, w < 0.0f};
}

float
dequantizeWeight(const ScmWeight &w, float w_scale, int dac_steps)
{
    const float mag = static_cast<float>(w.magnitude)
                      / static_cast<float>(dac_steps) * w_scale;
    return w.negative ? -mag : mag;
}

std::vector<FlatKernel>
flattenKernels(const Tensor &rgb_weights, float w_scale)
{
    LECA_CHECK(rgb_weights.dim() == 4 && rgb_weights.size(1) == 3 &&
                rgb_weights.size(2) == 2 && rgb_weights.size(3) == 2,
                "flattenKernels expects [Nch,3,2,2]");
    const int nch = rgb_weights.size(0);
    std::vector<FlatKernel> kernels(static_cast<std::size_t>(nch));
    for (int k = 0; k < nch; ++k) {
        FlatKernel &flat = kernels[static_cast<std::size_t>(k)];
        flat.taps.assign(16, ScmWeight{});
        for (int y = 0; y < 2; ++y) {
            for (int x = 0; x < 2; ++x) {
                const float wr = rgb_weights.at(k, 0, y, x);
                const float wg = rgb_weights.at(k, 1, y, x);
                const float wb = rgb_weights.at(k, 2, y, x);
                // Raw 4x4 block: RGB pixel (y,x) occupies the 2x2 cell
                // at (2y, 2x) with the RGGB pattern.
                const int ry = 2 * y, rx = 2 * x;
                auto tap = [&flat](int yy, int xx) -> ScmWeight & {
                    return flat.taps[static_cast<std::size_t>(yy) * 4 + xx];
                };
                tap(ry, rx) = quantizeWeight(wr, w_scale);
                tap(ry, rx + 1) = quantizeWeight(wg * 0.5f, w_scale);
                tap(ry + 1, rx) = quantizeWeight(wg * 0.5f, w_scale);
                tap(ry + 1, rx + 1) = quantizeWeight(wb, w_scale);
            }
        }
    }
    return kernels;
}

std::vector<float>
kernelToFloats(const FlatKernel &kernel, float w_scale)
{
    std::vector<float> out(16);
    for (int i = 0; i < 16; ++i)
        out[static_cast<std::size_t>(i)] =
            dequantizeWeight(kernel.taps[static_cast<std::size_t>(i)],
                             w_scale);
    return out;
}

} // namespace leca
