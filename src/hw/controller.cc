#include "controller.hh"

#include <algorithm>

namespace leca {

std::string
scheduleUnitName(ScheduleUnit unit)
{
    switch (unit) {
      case ScheduleUnit::RowScanner:
        return "row-scanner";
      case ScheduleUnit::ControllerS:
        return "controller-s";
      case ScheduleUnit::ControllerF:
        return "controller-f";
      case ScheduleUnit::AdcArray:
        return "adc-array";
    }
    return "?";
}

BandScheduler::BandScheduler(TimingConfig config) : _config(config)
{
}

std::vector<ScheduleEvent>
BandScheduler::schedule() const
{
    std::vector<ScheduleEvent> events;
    double t = 0.0;
    for (int row = 0; row < 4; ++row) {
        const std::string row_tag = " (row " + std::to_string(row) + ")";
        // Step 1: ROWSEL on; the weight write is hidden behind it.
        events.push_back({t, t + _config.pixelRowReadoutNs,
                          ScheduleUnit::RowScanner,
                          "ROWSEL pixel readout" + row_tag});
        events.push_back({t, t + _config.localSramWriteNs,
                          ScheduleUnit::ControllerS,
                          "local SRAM weight write (16x5b)" + row_tag});
        t += _config.pixelRowReadoutNs;
        // Step 1 (end): i-buffer write after ROWSEL turns off.
        events.push_back({t, t + _config.iBufferWriteNs,
                          ScheduleUnit::ControllerS,
                          "i-buffer write (4 analog values)" + row_tag});
        t += _config.iBufferWriteNs;
        // Step 2: the 16-MAC SCM burst under controller-f.
        events.push_back({t, t + _config.macBurstNs,
                          ScheduleUnit::ControllerF,
                          "SCM MAC burst (16 sample/transfer cycles)"
                              + row_tag});
        t += _config.macBurstNs;
        // Step 3: controller-f triggers the next row (implicit: the
        // next iteration's ROWSEL starts at the current t).
    }
    // Step 4: fetch the 4 ofmap elements through the ADC to the SRAM.
    events.push_back({t, t + _config.ofmapFetchNs, ScheduleUnit::AdcArray,
                      "ofmap fetch: o-buffers -> ADC -> global SRAM"});
    return events;
}

double
BandScheduler::bandEndNs() const
{
    const auto events = schedule();
    double end = 0.0;
    for (const auto &e : events)
        end = std::max(end, e.endNs);
    return end;
}

bool
BandScheduler::sramWritesHidden() const
{
    for (const auto &e : schedule()) {
        if (e.unit != ScheduleUnit::ControllerS ||
            e.action.find("SRAM") == std::string::npos)
            continue;
        // The matching ROWSEL window starts at the same instant.
        if (e.durationNs() > _config.pixelRowReadoutNs)
            return false;
    }
    return true;
}

} // namespace leca
