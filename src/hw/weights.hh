/**
 * @file
 * Hardware weight handling: quantization of trained encoder weights to
 * the 5-bit (sign + 4-bit magnitude) SCM codes, and kernel flattening
 * from the RGB domain to the Bayer raw domain (Fig. 5(a)).
 */

#ifndef LECA_HW_WEIGHTS_HH
#define LECA_HW_WEIGHTS_HH

#include <vector>

#include "analog/scm.hh"
#include "tensor/tensor.hh"

namespace leca {

/**
 * Quantize a real weight to a sign+magnitude SCM code.
 *
 * @param w          the trained weight
 * @param w_scale    |w| = w_scale maps to the full DAC code
 * @param dac_steps  number of magnitude steps (15 for 4-bit)
 */
ScmWeight quantizeWeight(float w, float w_scale, int dac_steps = 15);

/** Real-valued weight represented by an SCM code under @p w_scale. */
float dequantizeWeight(const ScmWeight &w, float w_scale,
                       int dac_steps = 15);

/**
 * One encoder kernel flattened onto the raw Bayer 4x4 block
 * (row-major, 16 entries).
 */
struct FlatKernel
{
    std::vector<ScmWeight> taps; //!< 16 sign+magnitude codes

    /** Taps of raw row @p r (4 entries). */
    std::vector<ScmWeight>
    row(int r) const
    {
        return {taps.begin() + r * 4, taps.begin() + (r + 1) * 4};
    }
};

/**
 * Flatten trained RGB encoder weights [Nch, 3, 2, 2] into raw-domain
 * 4x4 kernels: the green weight is halved and placed on both green
 * Bayer sites; red/blue map to their single sites (Fig. 5(a)).
 *
 * @param rgb_weights encoder weight tensor [Nch, 3, 2, 2]
 * @param w_scale     weight quantization scale
 * @return one FlatKernel per output channel
 */
std::vector<FlatKernel> flattenKernels(const Tensor &rgb_weights,
                                       float w_scale);

/**
 * Inverse check helper: the real-valued raw-domain weight matrix
 * represented by a flattened kernel (4x4 row-major floats).
 */
std::vector<float> kernelToFloats(const FlatKernel &kernel, float w_scale);

} // namespace leca

#endif // LECA_HW_WEIGHTS_HH
