#include "timing.hh"

#include "util/check.hh"

namespace leca {

double
TimingModel::bandLatencyNs() const
{
    const double per_row = _config.pixelRowReadoutNs
                           + _config.iBufferWriteNs + _config.macBurstNs;
    return 4.0 * per_row + _config.ofmapFetchNs;
}

double
TimingModel::frameLatencyUs(int raw_rows, int nch) const
{
    LECA_CHECK(raw_rows % 4 == 0, "raw rows must be a multiple of 4");
    LECA_CHECK(nch >= 1, "need at least one channel");
    const int bands = raw_rows / 4;
    const int passes = (nch + 3) / 4; // repetitive readout factor
    return bands * passes * bandLatencyNs() / 1000.0;
}

double
TimingModel::framesPerSecond(int raw_rows, int nch) const
{
    return 1e6 / frameLatencyUs(raw_rows, nch);
}

double
TimingModel::normalFrameLatencyUs(int raw_rows) const
{
    // Normal mode: each row is read out and digitized through four
    // ADC quantization cycles (Sec. 4.3).
    const double per_row =
        _config.pixelRowReadoutNs + 4.0 * _config.adcCycleNs;
    return raw_rows * per_row / 1000.0;
}

bool
TimingModel::sramWriteHidden() const
{
    return _config.localSramWriteNs <= _config.pixelRowReadoutNs;
}

} // namespace leca
