/**
 * @file
 * One column-parallel processing element (Fig. 5(b,c), Fig. 6).
 *
 * A PE serves four adjacent pixel columns. It contains four i-buffers,
 * a 16x5-bit local weight SRAM, one switched-capacitor multiplier, and
 * four differential o-buffers (one per kernel of the active group).
 * The dataflow is input-stationary: each buffered ifmap row is reused
 * across the four kernels, and psums are reduced locally on the
 * o-buffers across the four rows of a block.
 */

#ifndef LECA_HW_PE_HH
#define LECA_HW_PE_HH

#include <array>
#include <vector>

#include "analog/chain.hh"
#include "hw/stats.hh"
#include "hw/weights.hh"

namespace leca {

/** Fidelity of the analog simulation inside the PE. */
enum class PeMode
{
    Ideal,    //!< analytic models, no mismatch, no noise (hard model)
    Real,     //!< instance mismatch, deterministic (one die, no noise)
    RealNoisy //!< instance mismatch + per-sample noise
};

/**
 * A single PE. Constructing with a Monte-Carlo stream gives the PE its
 * own sampled device mismatch (column-to-column variation).
 */
class Pe
{
  public:
    /** Nominal PE (ideal devices). */
    explicit Pe(const CircuitConfig &config);

    /** PE with Monte-Carlo sampled devices. */
    Pe(const CircuitConfig &config, Rng &mc_rng);

    /** Configure the ADC resolution and programmable full scale. */
    void configureAdc(QBits qbits, double full_scale);

    /** Reset the four o-buffers to V_CM (start of a 4x4 block). */
    void startBlock();

    /**
     * Write one ifmap row segment (4 analog pixel voltages) into the
     * i-buffers (controller-s, step 1 of Sec. 4.2).
     */
    void loadRow(const std::array<double, 4> &pixel_voltages);

    /**
     * Write one row of weights for up to 4 kernels into the local SRAM
     * (16 x 5 bits) — hidden behind the pixel readout in hardware.
     */
    void loadWeights(const std::vector<FlatKernel> &kernels,
                     int kernel_base, int kernel_count, int row_in_block);

    /**
     * Run the 16 MAC operations of one row (controller-f, step 2):
     * kernels consecutively, i-buffers cyclically; psums accumulate on
     * the per-kernel o-buffers.
     */
    void processRow(int kernel_count, PeMode mode, Rng *noise_rng);

    /**
     * After four rows, convert the o-buffers (step 4) and return one
     * code per kernel.
     */
    std::vector<int> readOfmap(int kernel_count, PeMode mode,
                               Rng *noise_rng);

    /** Differential o-buffer voltage of kernel @p k (pre-ADC). */
    double obufferDiff(int k) const;

    const ChipStats &stats() const { return _stats; }
    void resetStats() { _stats = ChipStats{}; }
    AnalogChain &chain() { return _chain; }

  private:
    AnalogChain _chain;
    std::array<double, 4> _iBuffer{};
    std::array<ScmWeight, 16> _localSram{}; //!< [kernel][column]
    std::vector<DiffBuffer> _oBuffers;
    ChipStats _stats;

    double applyPsf(double v_pixel, PeMode mode, Rng *noise_rng) const;
};

} // namespace leca

#endif // LECA_HW_PE_HH
