#include "metrics.hh"

#include <algorithm>
#include <bit>
#include <limits>

namespace leca::serve {

int
LatencyHistogram::bucketOf(std::int64_t value)
{
    if (value < kExactBuckets)
        return static_cast<int>(std::max<std::int64_t>(value, 0));
    const auto v = static_cast<std::uint64_t>(value);
    const int octave = std::bit_width(v) - 1; // floor(log2 v), 4..62
    // Two bits below the leading one select the sub-bucket.
    const int sub = static_cast<int>((v >> (octave - 2)) & 3);
    return std::min(kBuckets - 1,
                    (octave - kExactOctaves) * 4 + sub + kExactBuckets);
}

std::int64_t
LatencyHistogram::bucketLowerBound(int b)
{
    if (b < kExactBuckets)
        return b; // buckets 0..15 hold exactly their own value
    const int octave = (b - kExactBuckets) / 4 + kExactOctaves;
    const int sub = (b - kExactBuckets) % 4;
    if (octave >= 63) // beyond any representable int64 sample
        return std::numeric_limits<std::int64_t>::max();
    const std::uint64_t base = std::uint64_t{1} << octave;
    return static_cast<std::int64_t>(
        base + static_cast<std::uint64_t>(sub) * (base >> 2));
}

void
LatencyHistogram::record(std::int64_t value)
{
    value = std::max<std::int64_t>(value, 0);
    _buckets[static_cast<std::size_t>(bucketOf(value))].fetch_add(
        1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(value, std::memory_order_relaxed);
    std::int64_t seen = _min.load(std::memory_order_relaxed);
    while (value < seen
           && !_min.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
    }
    seen = _max.load(std::memory_order_relaxed);
    while (value > seen
           && !_max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
    }
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.count = _count.load(std::memory_order_relaxed);
    if (snap.count > 0) {
        snap.minValue = _min.load(std::memory_order_relaxed);
        snap.maxValue = _max.load(std::memory_order_relaxed);
        snap.mean = static_cast<double>(_sum.load(std::memory_order_relaxed))
                    / static_cast<double>(snap.count);
    }
    for (int b = 0; b < kBuckets; ++b)
        snap.buckets[static_cast<std::size_t>(b)] =
            _buckets[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
    return snap;
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count - 1);
    double seen = 0.0;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
        const double in_bucket =
            static_cast<double>(buckets[static_cast<std::size_t>(b)]);
        if (in_bucket > 0.0 && rank < seen + in_bucket) {
            // Interpolate within the bucket's value range.
            const double lo =
                static_cast<double>(LatencyHistogram::bucketLowerBound(b));
            const double hi = static_cast<double>(
                b + 1 < LatencyHistogram::kBuckets
                    ? LatencyHistogram::bucketLowerBound(b + 1)
                    : maxValue);
            const double frac = (rank - seen) / in_bucket;
            const double value = lo + (hi - lo) * frac;
            return std::clamp(value, static_cast<double>(minValue),
                              static_cast<double>(maxValue));
        }
        seen += in_bucket;
    }
    return static_cast<double>(maxValue);
}

void
ServeMetrics::recordQueueDepth(std::int64_t depth)
{
    std::int64_t seen = _maxQueueDepth.load(std::memory_order_relaxed);
    while (depth > seen
           && !_maxQueueDepth.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
}

MetricsSnapshot
ServeMetrics::snapshot() const
{
    MetricsSnapshot snap;
    snap.submitted = _submitted.load(std::memory_order_relaxed);
    snap.completed = _completed.load(std::memory_order_relaxed);
    snap.shed = _shed.load(std::memory_order_relaxed);
    snap.expired = _expired.load(std::memory_order_relaxed);
    snap.rejectedClosed = _rejectedClosed.load(std::memory_order_relaxed);
    snap.errored = _errored.load(std::memory_order_relaxed);
    snap.batches = _batches.load(std::memory_order_relaxed);
    snap.maxQueueDepth = _maxQueueDepth.load(std::memory_order_relaxed);
    snap.queueNanos = _queueNanos.snapshot();
    snap.batchNanos = _batchNanos.snapshot();
    snap.totalNanos = _totalNanos.snapshot();
    snap.batchSize = _batchSize.snapshot();
    return snap;
}

} // namespace leca::serve
