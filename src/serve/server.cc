#include "server.hh"

#include <cstring>
#include <utility>

#include "bitstream/codec.hh"
#include "core/pipeline.hh"
#include "nn/quantize.hh"
#include "util/alloc_guard.hh"
#include "util/check.hh"

namespace leca::serve {

// ---- FrameTicket ---------------------------------------------------------

const FrameResult &
FrameTicket::wait()
{
    UniqueLock lock(_mutex);
    // Explicit wait loop (not a predicate lambda): the thread-safety
    // analysis cannot see into lambdas, so the guarded read of _ready
    // must happen in this scope where the capability is visibly held.
    while (!_ready)
        _done.wait(lock.raw());
    return _result;
}

bool
FrameTicket::done() const
{
    MutexLock lock(_mutex);
    return _ready;
}

bool
FrameTicket::pending() const
{
    MutexLock lock(_mutex);
    return _pending;
}

void
FrameTicket::arm(std::uint64_t session, std::uint64_t frame_index)
{
    MutexLock lock(_mutex);
    LECA_CHECK(!_pending, "FrameTicket resubmitted while still pending "
               "(session ", _result.session, ", frame ",
               _result.frameIndex, ")");
    _pending = true;
    _ready = false;
    _result.status = ServeStatus::Closed;
    _result.session = session;
    _result.frameIndex = frame_index;
    _result.argmax = -1;
    _result.wire.clear();
    _result.queueNanos = _result.batchNanos = _result.totalNanos = 0;
    _result.batchSize = 0;
}

// ---- ServerOptions -------------------------------------------------------

void
ServerOptions::validate() const
{
    LECA_CHECK(queueCapacity >= 1 && queueCapacity <= (1 << 20),
               "serve queue capacity ", queueCapacity,
               " outside [1, 2^20]");
    LECA_CHECK(maxBatch >= 1 && maxBatch <= 1024, "serve max batch ",
               maxBatch, " outside [1, 1024]");
    LECA_CHECK(maxWaitMicros >= 0 && maxWaitMicros <= 10'000'000,
               "serve max coalescing wait ", maxWaitMicros,
               " µs outside [0, 10s]");
}

// ---- Server --------------------------------------------------------------

Server::Server(Backend backend, std::vector<int> frame_shape,
               const ServerOptions &options, WireEncoder wire)
    : _backend(std::move(backend)), _wire(std::move(wire)),
      _frameShape(std::move(frame_shape)), _frameElems(0),
      _options(options), _noise(options.sensor),
      _queue(options.queueCapacity), _sessionRoot(options.seed)
{
    _options.validate();
    LECA_CHECK(_backend != nullptr, "server needs a backend");
    LECA_CHECK(!_options.wirePayload || _wire != nullptr,
               "wirePayload requires a WireEncoder at construction");
    LECA_CHECK(_frameShape.size() == 3,
               "frame shape must be {C, H, W}, got rank ",
               _frameShape.size());
    std::size_t elems = 1;
    for (int extent : _frameShape) {
        LECA_CHECK(extent >= 1, "frame extent must be >= 1, got ", extent);
        elems *= static_cast<std::size_t>(extent);
    }
    _frameElems = elems;
    _staging.resize(static_cast<std::size_t>(_options.maxBatch)
                    * _frameElems);
    _staged.resize(static_cast<std::size_t>(_options.maxBatch));
    // Pre-build the borrowed batch views (one per batch size) now that
    // _staging has its final storage; dispatch then never constructs a
    // Tensor per forward. See the _batchViews field comment.
    _batchViews.reserve(static_cast<std::size_t>(_options.maxBatch));
    for (int n = 1; n <= _options.maxBatch; ++n)
        _batchViews.push_back(Tensor::borrow(
            {n, _frameShape[0], _frameShape[1], _frameShape[2]},
            _staging.data()));
    if (_options.wirePayload) {
        _frameViews.reserve(static_cast<std::size_t>(_options.maxBatch));
        for (int n = 0; n < _options.maxBatch; ++n)
            _frameViews.push_back(Tensor::borrow(
                {_frameShape[0], _frameShape[1], _frameShape[2]},
                _staging.data()
                    + static_cast<std::size_t>(n) * _frameElems));
        _wireBufs.resize(static_cast<std::size_t>(_options.maxBatch));
    }
    _dispatcher.start([this] { runDispatcher(); });
}

Server::~Server()
{
    try {
        stop();
    } catch (...) {
        // A backend exception was already reported to every affected
        // ticket; destruction must not throw.
    }
}

Session
Server::openSession()
{
    MutexLock lock(_sessionMutex);
    return Session(_nextSessionId++, _sessionRoot.fork());
}

void
Server::submit(Session &session, const Tensor &frame, FrameTicket &ticket,
               std::int64_t deadline_micros)
{
    LECA_CHECK_SHAPE(frame, _frameShape);
    const auto now = Clock::now();
    const auto deadline =
        deadline_micros > 0
            ? now + std::chrono::microseconds(deadline_micros)
            : Clock::time_point::max();
    const Rng frame_rng = session.nextFrameRng();
    const std::uint64_t frame_index = session.framesSubmitted() - 1;
    ticket.arm(session.id(), frame_index);
    _metrics.recordSubmitted();

    const float *src = frame.data();
    const auto fill = [&](Request &request) {
        request.ticket = &ticket;
        request.pixels.assign(src, src + _frameElems);
        request.rng = frame_rng;
        request.session = session.id();
        request.frameIndex = frame_index;
        request.enqueue = now;
        request.deadline = deadline;
    };

    PushOutcome outcome = PushOutcome::Closed;
    switch (_options.policy) {
    case OverloadPolicy::Block:
        outcome = _queue.pushBlocking(fill);
        break;
    case OverloadPolicy::DropNewest:
        outcome = _queue.tryPush(fill);
        break;
    case OverloadPolicy::DropOldest:
        outcome = _queue.pushEvictOldest(fill, [&](Request &evicted) {
            _metrics.recordShed();
            completeUnserved(evicted.ticket, ServeStatus::Shed,
                             evicted.session, evicted.frameIndex,
                             evicted.enqueue);
        });
        break;
    }

    switch (outcome) {
    case PushOutcome::Ok:
    case PushOutcome::Evicted:
        _metrics.recordQueueDepth(_queue.size());
        break;
    case PushOutcome::Full:
        _metrics.recordShed();
        completeUnserved(&ticket, ServeStatus::Shed, session.id(),
                         frame_index, now);
        break;
    case PushOutcome::Closed:
        _metrics.recordRejectedClosed();
        completeUnserved(&ticket, ServeStatus::Closed, session.id(),
                         frame_index, now);
        break;
    }
}

void
Server::stop()
{
    MutexLock lock(_stopMutex);
    if (_stopped)
        return;
    _stopped = true;
    _queue.close();
    _dispatcher.join(); // rethrows a backend exception, if any
}

void
Server::completeUnserved(FrameTicket *ticket, ServeStatus status,
                         std::uint64_t session, std::uint64_t frame_index,
                         Clock::time_point enqueue)
{
    const auto now = Clock::now();
    ticket->complete([&](FrameResult &result) {
        result.status = status;
        result.session = session;
        result.frameIndex = frame_index;
        result.argmax = -1;
        result.queueNanos = 0;
        result.batchNanos = 0;
        result.totalNanos =
            std::chrono::duration_cast<std::chrono::nanoseconds>(now
                                                                 - enqueue)
                .count();
        result.batchSize = 0;
    });
}

void
Server::stageRequest(Request &request, int row)
{
    std::memcpy(_staging.data()
                    + static_cast<std::size_t>(row) * _frameElems,
                request.pixels.data(), _frameElems * sizeof(float));
    Staged &staged = _staged[static_cast<std::size_t>(row)];
    staged.ticket = request.ticket;
    staged.rng = request.rng;
    staged.session = request.session;
    staged.frameIndex = request.frameIndex;
    staged.enqueue = request.enqueue;
    staged.queueNanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - request.enqueue)
            .count();
}

int
Server::collectBatch()
{
    int count = 0;
    const auto accept = [&](Request &request) {
        if (request.deadline != Clock::time_point::max()
            && Clock::now() > request.deadline) {
            // Expire queued work whose deadline passed. Ticket locks
            // nest under the queue lock by fixed order, so completing
            // here is safe.
            _metrics.recordExpired();
            completeUnserved(request.ticket, ServeStatus::Expired,
                             request.session, request.frameIndex,
                             request.enqueue);
            _expiredThisCollect = true;
            return;
        }
        _expiredThisCollect = false;
        stageRequest(request, count);
    };

    // First frame: block until traffic arrives or the queue closes.
    while (count == 0) {
        if (!_queue.popBlocking(accept))
            return 0; // closed and drained
        if (!_expiredThisCollect)
            count = 1;
    }
    // Coalesce: keep admitting frames until the batch is full or the
    // max-wait window since the first admitted frame elapses.
    const auto wait_deadline =
        Clock::now() + std::chrono::microseconds(_options.maxWaitMicros);
    while (count < _options.maxBatch) {
        if (!_queue.popUntil(wait_deadline, accept))
            break; // window elapsed (or closed and drained)
        if (!_expiredThisCollect)
            ++count;
    }
    return count;
}

void
Server::dispatchLoop()
{
    for (;;) {
        const int count = collectBatch();
        if (count == 0)
            return; // closed and drained

        // Per-frame sensor noise from the session streams, outside
        // any lock: each frame's draws come from its own pre-forked
        // stream, so results do not depend on batch composition.
        if (_options.injectPixelNoise) {
            for (int i = 0; i < count; ++i) {
                float *row =
                    _staging.data() + static_cast<std::size_t>(i)
                                          * _frameElems;
                Rng rng = _staged[static_cast<std::size_t>(i)].rng;
                for (std::size_t j = 0; j < _frameElems; ++j)
                    row[j] = _noise.sampleIntensity(row[j], rng);
            }
        }

        const auto forward_start = Clock::now();
        Tensor logits;
        try {
            // Wire payloads are per-frame pure functions of the staged
            // (post-noise) pixels, so batch composition cannot leak
            // into the encoded bytes. The encoder owns its allocation
            // budget like the backend does.
            if (_options.wirePayload) {
                AllowAllocScope allow_wire;
                for (int i = 0; i < count; ++i) {
                    std::vector<std::uint8_t> &buf =
                        _wireBufs[static_cast<std::size_t>(i)];
                    buf.clear();
                    _wire(_frameViews[static_cast<std::size_t>(i)], buf);
                }
            }
            const Tensor &batch =
                _batchViews[static_cast<std::size_t>(count) - 1];
            // The serve layer itself is allocation-free at steady
            // state; the backend owns its own allocation budget
            // (documented contract), so exempt the forward from any
            // enclosing DenyAllocScope.
            AllowAllocScope allow_backend;
            logits = _backend(batch);
        } catch (...) {
            for (int i = 0; i < count; ++i) {
                const Staged &staged = _staged[static_cast<std::size_t>(i)];
                _metrics.recordErrored();
                completeUnserved(staged.ticket, ServeStatus::Error,
                                 staged.session, staged.frameIndex,
                                 staged.enqueue);
            }
            throw; // runDispatcher drains the rest, stop() rethrows
        }
        const auto forward_stop = Clock::now();
        LECA_CHECK(logits.dim() == 2 && logits.size(0) == count,
                   "backend must return [batch, classes] logits, got ",
                   detail::formatShape(logits.shape()), " for batch ",
                   count);
        const std::int64_t batch_nanos =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                forward_stop - forward_start)
                .count();
        _metrics.recordBatch();
        _metrics.batchNanos().record(batch_nanos);
        _metrics.batchSize().record(count);

        const int classes = logits.size(1);
        const float *all = logits.data();
        for (int i = 0; i < count; ++i) {
            const Staged &staged = _staged[static_cast<std::size_t>(i)];
            const float *row =
                all + static_cast<std::size_t>(i)
                          * static_cast<std::size_t>(classes);
            int best = 0;
            for (int k = 1; k < classes; ++k)
                if (row[k] > row[best])
                    best = k;
            const auto done = Clock::now();
            const std::int64_t total_nanos =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    done - staged.enqueue)
                    .count();
            staged.ticket->complete([&](FrameResult &result) {
                result.status = ServeStatus::Ok;
                result.session = staged.session;
                result.frameIndex = staged.frameIndex;
                result.logits.assign(row, row + classes);
                result.argmax = best;
                if (_options.wirePayload) {
                    const std::vector<std::uint8_t> &buf =
                        _wireBufs[static_cast<std::size_t>(i)];
                    result.wire.assign(buf.begin(), buf.end());
                }
                result.queueNanos = staged.queueNanos;
                result.batchNanos = batch_nanos;
                result.totalNanos = total_nanos;
                result.batchSize = count;
            });
            _metrics.recordCompleted();
            _metrics.queueNanos().record(staged.queueNanos);
            _metrics.totalNanos().record(total_nanos);
        }
    }
}

void
Server::runDispatcher()
{
    try {
        dispatchLoop();
    } catch (...) {
        // The dispatcher is dying: refuse new work and complete
        // everything still queued so no client blocks forever.
        _queue.close();
        while (_queue.popBlocking([&](Request &request) {
            _metrics.recordRejectedClosed();
            completeUnserved(request.ticket, ServeStatus::Closed,
                             request.session, request.frameIndex,
                             request.enqueue);
        })) {
        }
        throw;
    }
}

// ---- Backends ------------------------------------------------------------

Server::Backend
pipelineBackend(LecaPipeline &pipeline)
{
    return [&pipeline](const Tensor &batch) {
        return pipeline.forward(batch, Mode::Eval);
    };
}

Server::Backend
quantizedPipelineBackend(LecaPipeline &pipeline)
{
    if (!pipeline.quantized())
        pipeline.quantize();
    return pipelineBackend(pipeline);
}

Server::WireEncoder
pipelineWireEncoder(LecaPipeline &pipeline)
{
    return [&pipeline](const Tensor &frame,
                       std::vector<std::uint8_t> &out) {
        const Tensor batch = Tensor::borrow(
            {1, frame.size(0), frame.size(1), frame.size(2)},
            frame.data());
        const Tensor features = pipeline.encodeFeatures(batch, Mode::Eval);

        // The encoder emits exact quantizer grid values in [-1, 1], so
        // nearest-level requantization recovers the integer code of
        // every feature losslessly.
        const int levels = pipeline.encoder().qbits().levels();
        const float *f = features.data();
        std::vector<std::uint8_t> codes(features.numel());
        for (std::size_t i = 0; i < codes.size(); ++i)
            codes[i] = static_cast<std::uint8_t>(
                quantizeCode(f[i], -1.0f, 1.0f, levels));

        // Delta against the same x in the previous feature row — the
        // natural image-like prediction stride for [C, OH, OW] codes.
        const std::uint64_t stride = static_cast<std::uint64_t>(
            features.size(features.dim() - 1));
        out = bitstream::encodeByteStream(codes.data(), codes.size(),
                                          stride);
    };
}

} // namespace leca::serve
