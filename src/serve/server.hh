/**
 * @file
 * Asynchronous batched frame-serving runtime (DESIGN.md §10).
 *
 * N client threads submit frames through per-client Sessions into one
 * bounded queue; a single dispatcher ServiceThread coalesces queued
 * frames across sessions into batched backend forwards (max-batch +
 * max-wait coalescing) and completes the callers' tickets. Overload is
 * explicit and pluggable: Block (backpressure), DropNewest (load-shed
 * the arrival), DropOldest (evict the stalest queued frame), plus
 * per-request deadlines that expire work still waiting in the queue.
 *
 * Threading model: Sessions and FrameTickets belong to one client
 * thread each; Server::submit / stop / metrics are thread-safe. The
 * batched forward runs on the dispatcher thread and fans out across
 * the util/parallel pool (per-image conv loops, GEMM row panels), so
 * LECA_THREADS scales the compute while the serve layer itself adds
 * only queue handoffs.
 *
 * Memory model: the queue is a fixed ring whose slots recycle their
 * frame buffers, the batch staging buffer is allocated once, tickets
 * are caller-owned, and the kernels run on arena scratch — the
 * steady-state hot path performs no heap allocation in the serve
 * layer, and overload cannot grow memory (the queue never exceeds its
 * capacity, enforced by tests/test_serve.cc under 10x overload).
 *
 * Determinism contract: a response's payload depends only on (server
 * seed, session open order, frame index, frame content, backend) —
 * never on arrival interleaving, batch composition, LECA_THREADS, or
 * coalescing parameters. See session.hh for the Rng-stream half; the
 * backend must be per-image deterministic (pipeline forwards in Soft /
 * Hard modality are; Noisy draws from a shared stream and is not —
 * per-frame sensor noise is instead injected here from the session
 * streams when ServerOptions::injectPixelNoise is set). Which requests
 * get shed or expire under overload is timing-dependent by design;
 * the payload of every completed response is not.
 */

#ifndef LECA_SERVE_SERVER_HH
#define LECA_SERVE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sensor/noise.hh"
#include "serve/metrics.hh"
#include "serve/queue.hh"
#include "serve/session.hh"
#include "tensor/tensor.hh"
#include "util/mutex.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/thread_annotations.hh"

namespace leca {
class LecaPipeline;
} // namespace leca

namespace leca::serve {

/** What the queue does when a frame arrives at capacity. */
enum class OverloadPolicy
{
    Block,      //!< backpressure: submit blocks until space frees up
    DropNewest, //!< reject the arriving frame with ServeStatus::Shed
    DropOldest  //!< evict the stalest queued frame, admit the arrival
};

/** Terminal state of a submitted frame. */
enum class ServeStatus
{
    Ok,      //!< served; logits are valid
    Shed,    //!< dropped by the overload policy
    Expired, //!< deadline passed while queued
    Closed,  //!< server stopped before the frame was admitted
    Error    //!< the backend threw for this frame's batch
};

/** Completed response; read from FrameTicket::wait(). */
struct FrameResult
{
    ServeStatus status = ServeStatus::Closed;
    std::uint64_t session = 0;
    std::uint64_t frameIndex = 0;

    std::vector<float> logits; //!< [numClasses], Ok only
    int argmax = -1;           //!< argmax of logits, Ok only

    /**
     * Entropy-coded wire payload of this frame (a leca::bitstream
     * container, see DESIGN.md §14). Filled only when
     * ServerOptions::wirePayload is set and the server was built with
     * a WireEncoder; empty otherwise. Sized by the real encoded bytes,
     * so clients can meter the actual sensor-to-host link traffic.
     */
    std::vector<std::uint8_t> wire;

    // Per-stage latency breakdown (nanoseconds; stages that never
    // happened — e.g. batchNanos of a shed frame — stay 0).
    std::int64_t queueNanos = 0; //!< enqueue -> dispatch
    std::int64_t batchNanos = 0; //!< batched forward wall time
    std::int64_t totalNanos = 0; //!< submit -> completion
    int batchSize = 0;           //!< frames in the serving batch
};

/**
 * Caller-owned completion slot for one in-flight frame. Reusable:
 * submit() re-arms it, wait() blocks until the dispatcher (or the
 * overload path) completes it. A ticket must not be destroyed or
 * resubmitted while pending, and belongs to one client thread.
 */
class FrameTicket
{
  public:
    FrameTicket() = default;
    FrameTicket(const FrameTicket &) = delete;
    FrameTicket &operator=(const FrameTicket &) = delete;

    /** Block until completion and return the result. */
    const FrameResult &wait() LECA_EXCLUDES(_mutex);

    /** True when a result is ready (non-blocking). */
    bool done() const LECA_EXCLUDES(_mutex);

    /** True between submit() and completion. */
    bool pending() const LECA_EXCLUDES(_mutex);

  private:
    friend class Server;

    void arm(std::uint64_t session, std::uint64_t frame_index)
        LECA_EXCLUDES(_mutex);

    /**
     * Complete the ticket: run @p fill on the result slot under the
     * lock, then wake the waiter. Templated on the callable so the
     * dispatcher's capture-heavy completion lambdas never round-trip
     * through a heap-allocating std::function — ticket completion is
     * on the per-frame hot path.
     *
     * Notify happens while still holding the lock: the waiter may
     * destroy the ticket the moment wait() returns, and it cannot
     * return before we release the mutex — so notify_all never touches
     * a dead condvar.
     */
    template <typename Fill>
    void
    complete(Fill &&fill) LECA_EXCLUDES(_mutex)
    {
        MutexLock lock(_mutex);
        std::forward<Fill>(fill)(_result);
        _pending = false;
        _ready = true;
        _done.notify_all();
    }

    mutable Mutex _mutex;
    std::condition_variable _done;
    FrameResult _result LECA_GUARDED_BY(_mutex);
    bool _pending LECA_GUARDED_BY(_mutex) = false;
    bool _ready LECA_GUARDED_BY(_mutex) = false;
};

/** Serve-runtime configuration. Every knob is explicit and bounded. */
struct ServerOptions
{
    int queueCapacity = 64;        //!< bounded request queue slots
    int maxBatch = 8;              //!< frames coalesced per forward
    std::int64_t maxWaitMicros = 200; //!< coalescing wait after 1st frame
    OverloadPolicy policy = OverloadPolicy::Block;
    std::uint64_t seed = 1;        //!< root of all session Rng streams

    /**
     * Inject per-frame pixel-array noise (shot + read, Sec. 5.3) from
     * the session streams during staging, modelling each client's
     * sensor capture. Off by default (frames served as submitted).
     */
    bool injectPixelNoise = false;
    SensorConfig sensor; //!< noise model parameters when injecting

    /**
     * Attach each Ok response's entropy-coded wire payload
     * (FrameResult::wire). Requires a WireEncoder at construction.
     * Encoding runs per frame on the dispatcher thread after noise
     * injection, so the payload is exactly what an in-sensor encoder
     * would have transmitted for the frame as served. Off by default
     * (responses carry logits only).
     */
    bool wirePayload = false;

    void validate() const;
};

/**
 * The batched frame server. One instance owns the queue, the
 * dispatcher thread, and the metrics; construction starts the
 * dispatcher, stop() (or destruction) drains and joins it.
 */
class Server
{
  public:
    /** Batched model forward: [N, C, H, W] -> logits [N, K]. */
    using Backend = std::function<Tensor(const Tensor &)>;

    /**
     * Per-frame wire encoder: {C, H, W} frame -> entropy-coded payload
     * bytes appended into @p out (cleared by the caller first). Must be
     * a pure function of the frame content — it runs on the dispatcher
     * thread and its output is part of the determinism contract.
     */
    using WireEncoder =
        std::function<void(const Tensor &frame,
                           std::vector<std::uint8_t> &out)>;

    /**
     * @param backend     per-image-deterministic batched forward
     * @param frame_shape shape of one frame, {C, H, W}
     * @param options     queue/batching/overload configuration
     * @param wire        frame -> wire payload encoder; required when
     *                    options.wirePayload is set, ignored otherwise
     */
    Server(Backend backend, std::vector<int> frame_shape,
           const ServerOptions &options, WireEncoder wire = {});

    /** Stops (drains + joins) if still running; never throws. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Open a new session. Thread-safe, but for bit-reproducible runs
     * open sessions in a fixed order (e.g. all before traffic starts);
     * the session's Rng stream is forked from the server seed in open
     * order. The returned Session belongs to one client thread.
     */
    Session openSession() LECA_EXCLUDES(_sessionMutex);

    /**
     * Submit one frame ({C, H, W}, matching frame_shape) on @p session
     * and arm @p ticket with its completion. @p deadline_micros > 0
     * expires the request if it is still queued that many µs from now.
     * Blocking behaviour at capacity depends on the overload policy;
     * shed/expired/closed submissions complete the ticket immediately
     * with the corresponding status.
     */
    void submit(Session &session, const Tensor &frame, FrameTicket &ticket,
                std::int64_t deadline_micros = 0);

    /**
     * Stop accepting frames, serve everything already queued, join the
     * dispatcher. Safe to call twice. Rethrows a backend exception if
     * the dispatcher died on one (queued tickets are then completed
     * with ServeStatus::Closed, so no client is left hanging).
     */
    void stop() LECA_EXCLUDES(_stopMutex);

    /** Point-in-time copy of all counters and histograms. */
    MetricsSnapshot metrics() const { return _metrics.snapshot(); }

    /** Current queued-request count (racy; for tests and load gens). */
    int queueDepth() const { return _queue.size(); }

    const ServerOptions &options() const { return _options; }

  private:
    using Clock = std::chrono::steady_clock;

    /** One queued frame; slots live in the ring and are recycled. */
    struct Request
    {
        FrameTicket *ticket = nullptr;
        std::vector<float> pixels; //!< frame copy (capacity recycled)
        Rng rng{0};                //!< per-frame session stream
        std::uint64_t session = 0;
        std::uint64_t frameIndex = 0;
        Clock::time_point enqueue{};
        Clock::time_point deadline{}; //!< time_point::max() = none
    };

    /** Dispatcher-side view of one staged frame (pixels already in
     *  the staging buffer). */
    struct Staged
    {
        FrameTicket *ticket = nullptr;
        Rng rng{0};
        std::uint64_t session = 0;
        std::uint64_t frameIndex = 0;
        Clock::time_point enqueue{};
        std::int64_t queueNanos = 0;
    };

    void runDispatcher();
    void dispatchLoop();

    /**
     * Pop + stage up to maxBatch frames, expiring dead ones. Returns
     * the staged count; 0 means closed-and-drained.
     */
    int collectBatch();

    /** Copy a popped request into staging row @p row (queue-locked). */
    void stageRequest(Request &request, int row);

    /** Complete a ticket with a terminal non-Ok status. */
    void completeUnserved(FrameTicket *ticket, ServeStatus status,
                          std::uint64_t session, std::uint64_t frame_index,
                          Clock::time_point enqueue);

    Backend _backend;
    WireEncoder _wire;            //!< empty unless wirePayload is on
    std::vector<int> _frameShape; //!< {C, H, W}
    std::size_t _frameElems;
    ServerOptions _options;
    PixelNoiseModel _noise;

    BoundedQueue<Request> _queue;
    ServeMetrics _metrics;

    Mutex _sessionMutex;
    Rng _sessionRoot LECA_GUARDED_BY(_sessionMutex);
    std::uint64_t _nextSessionId LECA_GUARDED_BY(_sessionMutex) = 0;

    std::vector<float> _staging;  //!< [maxBatch * frameElems], reused
    std::vector<Staged> _staged;  //!< [maxBatch], reused

    /**
     * Borrowed [n, C, H, W] views over _staging for every batch size
     * n in 1..maxBatch, built once in the constructor. _staging never
     * reallocates after construction, so the views stay valid for the
     * server's lifetime and dispatch reuses _batchViews[count - 1]
     * instead of constructing a fresh view (and its shape vector) per
     * batched forward. Dispatcher-only, like _staging itself.
     */
    std::vector<Tensor> _batchViews;

    /**
     * Borrowed {C, H, W} views over each staging row, and the reusable
     * per-row payload buffers the wire encoder fills. Built only when
     * wirePayload is on; dispatcher-only, like _staging.
     */
    std::vector<Tensor> _frameViews;
    std::vector<std::vector<std::uint8_t>> _wireBufs;
    bool _expiredThisCollect = false;

    Mutex _stopMutex;
    bool _stopped LECA_GUARDED_BY(_stopMutex) = false;
    ServiceThread _dispatcher; //!< declared last: joins before members die
};

/** Backend adapter: evaluation-mode forward of a LecaPipeline. */
Server::Backend pipelineBackend(LecaPipeline &pipeline);

/**
 * Backend adapter over int8 block-quantized inference: converts the
 * pipeline's weights with LecaPipeline::quantize() (unless already
 * quantized, e.g. restored via loadQuantized) and serves evaluation
 * forwards through the int8 kernels. Quantization plans the resident
 * activation path (DESIGN.md §13): codes stay int8 between quantized
 * layers and fp32 appears only at planned precision boundaries. Same
 * contract as pipelineBackend: responses are bit-identical across
 * thread counts and batch splits.
 */
Server::Backend quantizedPipelineBackend(LecaPipeline &pipeline);

/**
 * Wire-encoder adapter over a trained pipeline: runs the encoder
 * (evaluation-mode encodeFeatures), recovers the integer feature codes
 * from the quantized [-1, 1] grid, and entropy-codes them into a
 * leca::bitstream byte-stream container (DESIGN.md §14). The payload
 * decodes bit-exactly to the feature codes via
 * bitstream::decodeByteStream, so FrameResult::wire carries the real
 * sensor-link byte count for the frame.
 */
Server::WireEncoder pipelineWireEncoder(LecaPipeline &pipeline);

} // namespace leca::serve

#endif // LECA_SERVE_SERVER_HH
