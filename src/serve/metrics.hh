/**
 * @file
 * Lock-free per-stage metrics for the serve runtime.
 *
 * Every counter and histogram bucket is a relaxed std::atomic, so the
 * submit path and the dispatcher record without taking any lock and
 * without perturbing each other. Readers take a Snapshot (plain
 * values) at any time; a snapshot taken while traffic is in flight is
 * approximate in the usual lock-free sense (counters may be mid-update
 * relative to each other) and exact once the server has quiesced.
 *
 * Latency histograms use fixed buckets: values below 16 get one exact
 * bucket each, larger values 4 log-spaced sub-buckets per power of two
 * (<= 25 % bucket width), 256 buckets total, covering the whole int64
 * nanosecond range with no allocation after construction. Recording is
 * one index computation plus one
 * fetch_add. Exact min/max/sum are kept alongside, so means are exact
 * and only the interior quantiles are bucket-interpolated.
 */

#ifndef LECA_SERVE_METRICS_HH
#define LECA_SERVE_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>

namespace leca::serve {

/** Plain-value view of one histogram; see LatencyHistogram::snapshot. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::int64_t minValue = 0; //!< exact (0 when count == 0)
    std::int64_t maxValue = 0; //!< exact
    double mean = 0.0;         //!< exact (sum / count)

    /**
     * Bucket-interpolated quantile, @p q in [0, 1]. Clamped to the
     * exact min/max so p0/p100 never leave the observed range.
     */
    double quantile(double q) const;

    std::array<std::uint64_t, 256> buckets{};
};

/**
 * Fixed-bucket log-spaced histogram of non-negative int64 samples
 * (nanosecond latencies, batch sizes). All methods are thread-safe;
 * record() is lock-free and allocation-free.
 */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 256;

    /** Values below 16 get one exact bucket each (the first four
     *  octaves); above that, 4 log-spaced sub-buckets per octave. */
    static constexpr int kExactBuckets = 16;
    static constexpr int kExactOctaves = 4; // log2(kExactBuckets)

    /** Record one sample (negative samples clamp to 0). */
    void record(std::int64_t value);

    /** Plain-value copy of the current state. */
    HistogramSnapshot snapshot() const;

    /** Bucket index of @p value: 4 sub-buckets per ns octave. */
    static int bucketOf(std::int64_t value);

    /** Inclusive lower bound of bucket @p b (upper = lower of b+1). */
    static std::int64_t bucketLowerBound(int b);

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> _buckets{};
    std::atomic<std::uint64_t> _count{0};
    std::atomic<std::int64_t> _sum{0};
    std::atomic<std::int64_t> _min{INT64_MAX};
    std::atomic<std::int64_t> _max{INT64_MIN};
};

/** Plain-value view of all serve metrics at one instant. */
struct MetricsSnapshot
{
    // Request accounting. Every submitted request ends in exactly one
    // of the five terminal counters once the server quiesces:
    //   submitted == completed + shed + expired + rejectedClosed + errored.
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;     //!< dropped by DropNewest / DropOldest
    std::uint64_t expired = 0;  //!< deadline passed while queued
    std::uint64_t rejectedClosed = 0; //!< submitted after stop()
    std::uint64_t errored = 0;  //!< backend threw for the frame's batch

    std::uint64_t batches = 0;       //!< dispatched batched forwards
    std::int64_t maxQueueDepth = 0;  //!< high-water queued requests

    HistogramSnapshot queueNanos; //!< enqueue -> dispatch, per request
    HistogramSnapshot batchNanos; //!< batched forward wall time
    HistogramSnapshot totalNanos; //!< submit -> completion, per request
    HistogramSnapshot batchSize;  //!< frames per dispatched batch
};

/** The live lock-free counters; owned by a Server. */
class ServeMetrics
{
  public:
    void recordSubmitted() { bump(_submitted); }
    void recordCompleted() { bump(_completed); }
    void recordShed() { bump(_shed); }
    void recordExpired() { bump(_expired); }
    void recordRejectedClosed() { bump(_rejectedClosed); }
    void recordErrored() { bump(_errored); }
    void recordBatch() { bump(_batches); }

    /** Raise the queue-depth high-water mark to at least @p depth. */
    void recordQueueDepth(std::int64_t depth);

    LatencyHistogram &queueNanos() { return _queueNanos; }
    LatencyHistogram &batchNanos() { return _batchNanos; }
    LatencyHistogram &totalNanos() { return _totalNanos; }
    LatencyHistogram &batchSize() { return _batchSize; }

    MetricsSnapshot snapshot() const;

  private:
    static void
    bump(std::atomic<std::uint64_t> &counter)
    {
        counter.fetch_add(1, std::memory_order_relaxed);
    }

    std::atomic<std::uint64_t> _submitted{0};
    std::atomic<std::uint64_t> _completed{0};
    std::atomic<std::uint64_t> _shed{0};
    std::atomic<std::uint64_t> _expired{0};
    std::atomic<std::uint64_t> _rejectedClosed{0};
    std::atomic<std::uint64_t> _errored{0};
    std::atomic<std::uint64_t> _batches{0};
    std::atomic<std::int64_t> _maxQueueDepth{0};

    LatencyHistogram _queueNanos;
    LatencyHistogram _batchNanos;
    LatencyHistogram _totalNanos;
    LatencyHistogram _batchSize;
};

} // namespace leca::serve

#endif // LECA_SERVE_METRICS_HH
