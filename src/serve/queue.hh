/**
 * @file
 * Bounded MPMC ring queue with explicit backpressure, the one queue
 * primitive of the serve runtime.
 *
 * Capacity is mandatory (there is no growing path, and
 * tools/leca_lint.py rule `serve-unbounded-queue` rejects unbounded
 * standard containers anywhere in src/serve/), so queue memory is
 * bounded by construction: overload must surface as blocking, a
 * rejected push, or an evicted oldest element — never as unbounded
 * growth.
 *
 * Slots are reused in place: producers write into the tail slot
 * through a fill callback and consumers read the head slot through a
 * use callback, so element-owned buffers (e.g. a request's frame
 * pixels) are recycled ring-round and the steady-state queue performs
 * no heap traffic. The fill/use callbacks run under the queue lock and
 * must stay short.
 *
 * Lock discipline is compile-time checked (DESIGN.md §11): every field
 * of the ring is LECA_GUARDED_BY(_mutex) and the locked helpers carry
 * LECA_REQUIRES(_mutex), so a Clang `-Wthread-safety` build fails on
 * any unlocked access path.
 *
 * close() wakes every waiter; pushes after close fail with Closed and
 * pops drain the remaining elements before reporting empty-and-closed.
 */

#ifndef LECA_SERVE_QUEUE_HH
#define LECA_SERVE_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <vector>

#include "util/check.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace leca::serve {

/** Outcome of a push attempt; see BoundedQueue. */
enum class PushOutcome
{
    Ok,      //!< element enqueued
    Full,    //!< rejected, queue at capacity (tryPush only)
    Evicted, //!< enqueued after evicting the oldest (pushEvictOldest)
    Closed   //!< rejected, queue closed
};

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(int capacity)
        : _slots(static_cast<std::size_t>(checkedCapacity(capacity))),
          _capacity(capacity)
    {
    }

    int capacity() const { return _capacity; }

    /** Current element count (racy outside the producer/consumer). */
    int
    size() const LECA_EXCLUDES(_mutex)
    {
        MutexLock lock(_mutex);
        return _size;
    }

    /** Block until space or close; fill(slot) writes the element. */
    template <typename Fill>
    PushOutcome
    pushBlocking(Fill &&fill) LECA_EXCLUDES(_mutex)
    {
        UniqueLock lock(_mutex);
        while (!_closed && _size == _capacity)
            _spaceAvailable.wait(lock.raw());
        if (_closed)
            return PushOutcome::Closed;
        enqueueLocked(fill);
        _itemAvailable.notify_one();
        return PushOutcome::Ok;
    }

    /** Non-blocking push; Full when at capacity. */
    template <typename Fill>
    PushOutcome
    tryPush(Fill &&fill) LECA_EXCLUDES(_mutex)
    {
        MutexLock lock(_mutex);
        if (_closed)
            return PushOutcome::Closed;
        if (_size == _capacity)
            return PushOutcome::Full;
        enqueueLocked(fill);
        _itemAvailable.notify_one();
        return PushOutcome::Ok;
    }

    /**
     * Push, evicting the oldest queued element when full. The evicted
     * element is handed to evict(slot) before its slot is reused (the
     * caller completes its ticket as shed).
     */
    template <typename Fill, typename Evict>
    PushOutcome
    pushEvictOldest(Fill &&fill, Evict &&evict) LECA_EXCLUDES(_mutex)
    {
        MutexLock lock(_mutex);
        if (_closed)
            return PushOutcome::Closed;
        bool evicted = false;
        if (_size == _capacity) {
            evict(_slots[_head]);
            _head = (_head + 1) % _slots.size();
            --_size;
            evicted = true;
        }
        enqueueLocked(fill);
        _itemAvailable.notify_one();
        return evicted ? PushOutcome::Evicted : PushOutcome::Ok;
    }

    /**
     * Pop the oldest element through use(slot). Blocks until an
     * element arrives or the queue is closed AND drained; returns
     * false only in the latter case.
     */
    template <typename Use>
    bool
    popBlocking(Use &&use) LECA_EXCLUDES(_mutex)
    {
        UniqueLock lock(_mutex);
        while (!_closed && _size == 0)
            _itemAvailable.wait(lock.raw());
        if (_size == 0)
            return false; // closed and drained
        dequeueLocked(use);
        _spaceAvailable.notify_one();
        return true;
    }

    /**
     * Pop like popBlocking but give up at @p deadline. Returns false
     * on timeout or on closed-and-drained (the caller distinguishes
     * via closed() if it needs to).
     */
    template <typename Use>
    bool
    popUntil(std::chrono::steady_clock::time_point deadline, Use &&use)
        LECA_EXCLUDES(_mutex)
    {
        UniqueLock lock(_mutex);
        while (!_closed && _size == 0) {
            if (_itemAvailable.wait_until(lock.raw(), deadline)
                == std::cv_status::timeout)
                break;
        }
        if (_size == 0)
            return false; // timed out, or closed and drained
        dequeueLocked(use);
        _spaceAvailable.notify_one();
        return true;
    }

    /** Reject future pushes and wake every waiter. Pops keep draining. */
    void
    close() LECA_EXCLUDES(_mutex)
    {
        MutexLock lock(_mutex);
        _closed = true;
        _itemAvailable.notify_all();
        _spaceAvailable.notify_all();
    }

    bool
    closed() const LECA_EXCLUDES(_mutex)
    {
        MutexLock lock(_mutex);
        return _closed;
    }

  private:
    static int
    checkedCapacity(int capacity)
    {
        LECA_CHECK(capacity >= 1, "queue capacity must be >= 1, got ",
                   capacity);
        return capacity;
    }

    template <typename Fill>
    void
    enqueueLocked(Fill &fill) LECA_REQUIRES(_mutex)
    {
        fill(_slots[_tail]);
        _tail = (_tail + 1) % _slots.size();
        ++_size;
    }

    template <typename Use>
    void
    dequeueLocked(Use &use) LECA_REQUIRES(_mutex)
    {
        use(_slots[_head]);
        _head = (_head + 1) % _slots.size();
        --_size;
    }

    mutable Mutex _mutex;
    std::condition_variable _itemAvailable;
    std::condition_variable _spaceAvailable;
    std::vector<T> _slots LECA_GUARDED_BY(_mutex);
    std::size_t _head LECA_GUARDED_BY(_mutex) = 0;
    std::size_t _tail LECA_GUARDED_BY(_mutex) = 0;
    int _size LECA_GUARDED_BY(_mutex) = 0;
    const int _capacity;
    bool _closed LECA_GUARDED_BY(_mutex) = false;
};

} // namespace leca::serve

#endif // LECA_SERVE_QUEUE_HH
