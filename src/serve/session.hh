/**
 * @file
 * Client sessions of the serve runtime.
 *
 * A Session is the unit of stream identity and of randomness: it owns
 * a private Rng stream forked deterministically from the server's root
 * seed at openSession() time, and forks one child stream per submitted
 * frame. Because each session is driven by exactly one client thread
 * (sessions are NOT thread-safe; the Server is), the per-frame streams
 * depend only on (server seed, session open order, frame index) —
 * never on how frames from different sessions interleave in the shared
 * queue or how the batcher coalesces them. That is the determinism
 * contract of DESIGN.md §10: open sessions in a fixed order (e.g. all
 * of them before starting client threads) and every response is
 * bit-identical across thread counts, batch shapes, and overload
 * timing (modulo which requests get shed, which is timing-dependent by
 * design).
 */

#ifndef LECA_SERVE_SESSION_HH
#define LECA_SERVE_SESSION_HH

#include <cstdint>

#include "util/rng.hh"

namespace leca::serve {

/** One client's frame stream; created by Server::openSession(). */
class Session
{
  public:
    /** Stable id (the open-order index). */
    std::uint64_t id() const { return _id; }

    /** Frames submitted so far on this session. */
    std::uint64_t framesSubmitted() const { return _nextFrame; }

  private:
    friend class Server;

    Session(std::uint64_t id, Rng rng) : _id(id), _rng(rng) {}

    /** Per-frame child stream; advances the session stream once. */
    Rng
    nextFrameRng()
    {
        ++_nextFrame;
        return _rng.fork();
    }

    std::uint64_t _id;
    Rng _rng;
    std::uint64_t _nextFrame = 0;
};

} // namespace leca::serve

#endif // LECA_SERVE_SESSION_HH
