/**
 * @file
 * The LeCA training methodology (Sec. 3.4, Fig. 9):
 *
 *  - joint training of encoder+decoder against cross-entropy with the
 *    backbone frozen (gradients flow through it, weights don't move);
 *  - incremental Q_bit schedule: pre-train at a lenient 8-bit, then
 *    fine-tune at the target Q_bit;
 *  - the soft -> hard -> noisy curriculum: hard training initialises
 *    from soft weights, noisy training fine-tunes the hard model with
 *    the extracted non-ideality model in the loop.
 */

#ifndef LECA_CORE_TRAINER_HH
#define LECA_CORE_TRAINER_HH

#include "core/pipeline.hh"
#include "data/dataset.hh"

namespace leca {

/** Options of one LeCA training stage. */
struct LecaTrainOptions
{
    int epochs = 8;
    int batchSize = 32;
    double learningRate = 1e-3;
    int lrDecayEveryEpochs = 0;
    double lrDecayFactor = 0.1;
    bool unfreezeBackbone = false; //!< Sec. 6.4 ablation
    bool incrementalQbit = true;   //!< 8-bit pre-train, then target
    int incrementalEpochs = 3;     //!< epochs of the lenient stage
    bool prefetch = true;          //!< overlap batch prep with compute
    bool verbose = false;
    std::uint64_t seed = 7;
};

/** Drives training of a LecaPipeline. */
class LecaTrainer
{
  public:
    explicit LecaTrainer(LecaPipeline &pipeline) : _pipeline(pipeline) {}

    /**
     * Train the pipeline in its *current* modality; returns final
     * validation accuracy. Applies the incremental-Qbit schedule when
     * the target Q_bit is below 8 and options request it.
     */
    double train(const Dataset &train, const Dataset &val,
                 const LecaTrainOptions &options);

    /**
     * The full curriculum: soft training, then hard training from the
     * soft weights, then noisy fine-tuning (Fig. 9). Returns the final
     * noisy-eval accuracy; per-stage accuracies via the out-params.
     */
    double trainCurriculum(const Dataset &train, const Dataset &val,
                           const LecaTrainOptions &options,
                           double *soft_acc = nullptr,
                           double *hard_acc = nullptr);

    /** Evaluate under a given modality (restores the previous one). */
    double evaluate(const Dataset &ds, EncoderModality modality);

  private:
    LecaPipeline &_pipeline;

    double runEpochs(const Dataset &train, const Dataset &val, int epochs,
                     const LecaTrainOptions &options);
};

} // namespace leca

#endif // LECA_CORE_TRAINER_HH
