/**
 * @file
 * The LeCA decoder (Table 2): a transposed-convolution upsampler from
 * the quantized ofmap back to image extent, a stack of M DnCNN-style
 * convolutional blocks, and a filtered head (conv+BN+ReLU, conv). It
 * runs off-sensor at full precision (Sec. 3.4) and is trained jointly
 * with the encoder against the frozen backbone.
 */

#ifndef LECA_CORE_DECODER_HH
#define LECA_CORE_DECODER_HH

#include "core/leca_config.hh"
#include "nn/sequential.hh"
#include "util/rng.hh"

namespace leca {

/** Decoder network; a thin wrapper around a Sequential stack. */
class LecaDecoder : public Layer
{
  public:
    LecaDecoder(const LecaConfig &config, Rng &init_rng);

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override { return _net.params(); }
    std::vector<Tensor *> state() override { return _net.state(); }
    void
    setStatsRefresh(bool enable) override
    {
        _net.setStatsRefresh(enable);
    }
    void
    quantizeWeights(std::vector<QuantStat> &stats) override
    {
        _net.quantizeWeights(stats);
    }
    std::vector<QuantTensor *> quantTensors() override
    {
        return _net.quantTensors();
    }

    /**
     * Rebuild the decoder stack's quantized execution plan (DESIGN.md
     * §13). quantizeWeights plans implicitly; this is for restores that
     * bypass it (Pipeline::loadQuantized).
     */
    void planQuantized() { _net.planQuantized(); }

    /** Total parameter count (for the Table 2 size discussion). */
    std::size_t parameterCount();

  private:
    Sequential _net;
};

} // namespace leca

#endif // LECA_CORE_DECODER_HH
