#include "leca_config.hh"

#include <cmath>

namespace leca {

std::vector<LecaConfig>
designPointsForCr(double target_cr, int max_nch)
{
    static const double candidate_bits[] = {1.0, 1.5, 2.0, 3.0, 4.0,
                                            6.0, 8.0};
    LECA_CHECK(target_cr > 0.0, "target compression ratio ", target_cr);
    LECA_CHECK(max_nch >= 1, "max_nch ", max_nch);
    std::vector<LecaConfig> points;
    for (int nch = 1; nch <= max_nch; ++nch) {
        for (double bits : candidate_bits) {
            LecaConfig cfg;
            cfg.kernel = 2;
            cfg.nch = nch;
            cfg.qbits = QBits(bits);
            if (std::abs(cfg.compressionRatio() - target_cr) < 1e-9)
                points.push_back(cfg);
        }
    }
    return points;
}

} // namespace leca
