/**
 * @file
 * The full LeCA machine-vision pipeline (Fig. 3(a)): encoder ->
 * decoder -> frozen backbone DNN, with modality switching and the
 * pixel-array noise injection of Sec. 5.3.
 */

#ifndef LECA_CORE_PIPELINE_HH
#define LECA_CORE_PIPELINE_HH

#include <memory>
#include <string>

#include "core/decoder.hh"
#include "core/encoder.hh"
#include "data/dataset.hh"
#include "nn/sequential.hh"
#include "sensor/noise.hh"

namespace leca {

/** Encoder + decoder stacked before a (typically frozen) backbone. */
class LecaPipeline
{
  public:
    struct Options
    {
        LecaConfig leca;
        CircuitConfig circuit;
        SensorConfig sensor;
        std::uint64_t seed = 1;
    };

    /**
     * @param backbone a pre-trained classifier; it is frozen on
     *                 construction (Sec. 3.4) and can be unfrozen for
     *                 the Sec. 6.4 ablation.
     */
    LecaPipeline(const Options &options,
                 std::unique_ptr<Sequential> backbone);

    LecaEncoder &encoder() { return *_encoder; }
    LecaDecoder &decoder() { return *_decoder; }
    Sequential &backbone() { return *_backbone; }

    /** Switch the encoder modality (soft / hard / noisy). */
    void setModality(EncoderModality modality);
    EncoderModality modality() const { return _encoder->modality(); }

    /** Full forward pass to logits. */
    Tensor forward(const Tensor &images, Mode mode);

    /** Encoder+decoder only — the reconstructed image (Fig. 12). */
    Tensor decodeImages(const Tensor &images, Mode mode);

    /** Encoder only — the quantized feature map (Fig. 12). */
    Tensor encodeFeatures(const Tensor &images, Mode mode);

    /** Backpropagate from logits gradient through the whole stack. */
    void backward(const Tensor &grad_logits);

    /** Every parameter (backbone ones carry frozen=true by default). */
    std::vector<Param *> allParams();

    /** Unfreeze/refreeze the backbone (Sec. 6.4 ablation). */
    void setBackboneFrozen(bool frozen);

    /** Top-1 accuracy of the pipeline on a dataset. */
    double evalAccuracy(const Dataset &ds, int batch_size = 64);

    /**
     * Recompute decoder + backbone batch-norm running statistics over
     * @p ds in the current modality (forward-only).
     */
    void refreshStats(const Dataset &ds, int batch_size = 32);

    /**
     * Summary of one quantize() conversion: every converted layer's
     * size and reconstruction error (DESIGN.md §12).
     */
    struct QuantizationReport
    {
        std::vector<QuantStat> layers;

        std::size_t fp32Bytes() const;  //!< total weight bytes before
        std::size_t quantBytes() const; //!< total codes+scales bytes after
        float maxAbsError() const;      //!< worst per-layer weight error
    };

    /**
     * Convert every dense weight (encoder conv in Soft modality, the
     * decoder and backbone Conv2d/Linear layers) to block-quantized
     * int8 for serving. One-way for this process: evaluation-mode
     * forwards run the int8 kernels afterwards, and training-mode
     * forwards (including refreshStats) become a checked error. Call
     * after training and after any refreshStats pass.
     */
    QuantizationReport quantize();

    /** True once quantize() or loadQuantized() has converted weights. */
    bool quantized() const { return _quantized; }

    /**
     * Persist the whole trained pipeline (encoder weights + ADC
     * boundary, decoder, backbone, and all batch-norm running
     * statistics) to one file.
     */
    void save(const std::string &path);

    /** Restore a pipeline saved with save(); shapes must match. */
    bool load(const std::string &path);

    /**
     * Persist the fp32 state AND the int8 weights (checkpoint kind 3),
     * so a serving replica restores quantized inference bit-exactly
     * without re-running quantization. Requires quantize() first.
     */
    void saveQuantized(const std::string &path);

    /** Restore a pipeline saved with saveQuantized(). */
    bool loadQuantized(const std::string &path);

    /** Noise stream used for pixel + analog noise in Noisy modality. */
    Rng &noiseRng() { return _noiseRng; }

  private:
    std::unique_ptr<LecaEncoder> _encoder;
    std::unique_ptr<LecaDecoder> _decoder;
    std::unique_ptr<Sequential> _backbone;
    PixelNoiseModel _pixelNoise;
    Rng _noiseRng;
    bool _quantized = false;
};

} // namespace leca

#endif // LECA_CORE_PIPELINE_HH
