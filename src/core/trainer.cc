#include "trainer.hh"

#include <algorithm>
#include <numeric>

#include "data/trainloop.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "util/logging.hh"

namespace leca {

double
LecaTrainer::runEpochs(const Dataset &train, const Dataset &val, int epochs,
                       const LecaTrainOptions &options)
{
    Rng rng(options.seed);
    Adam adam(_pipeline.allParams(), options.learningRate);
    SoftmaxCrossEntropy loss;

    std::vector<int> order(static_cast<std::size_t>(train.count()));
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < epochs; ++epoch) {
        if (options.lrDecayEveryEpochs > 0 && epoch > 0 &&
            epoch % options.lrDecayEveryEpochs == 0) {
            adam.setLearningRate(adam.learningRate()
                                 * options.lrDecayFactor);
        }
        for (int i = train.count() - 1; i > 0; --i) {
            const int j = rng.uniformInt(0, i);
            std::swap(order[static_cast<std::size_t>(i)],
                      order[static_cast<std::size_t>(j)]);
        }
        BatchPipeline batches(train, order, options.batchSize,
                              options.prefetch);
        double epoch_loss = 0.0;
        const int batch_count = batches.batchCount();
        for (int b = 0; b < batch_count; ++b) {
            const Dataset &batch = batches.batch(b);
            adam.zeroGrad();
            const Tensor logits =
                _pipeline.forward(batch.images, Mode::Train);
            epoch_loss += loss.forward(logits, batch.labels);
            _pipeline.backward(loss.backward());
            adam.step();
        }
        if (options.verbose) {
            inform("leca epoch ", epoch + 1, "/", epochs, " loss ",
                   epoch_loss / std::max(1, batch_count));
        }
    }
    _pipeline.refreshStats(train, options.batchSize);
    return _pipeline.evalAccuracy(val);
}

double
LecaTrainer::train(const Dataset &train, const Dataset &val,
                   const LecaTrainOptions &options)
{
    if (options.unfreezeBackbone)
        _pipeline.setBackboneFrozen(false);

    const QBits target = _pipeline.encoder().qbits();
    double acc = 0.0;
    if (options.incrementalQbit && target.bits() < 8.0 &&
        options.incrementalEpochs > 0) {
        // Lenient 8-bit pre-training stage (Sec. 3.4).
        _pipeline.encoder().setQbits(QBits(8.0));
        runEpochs(train, val, options.incrementalEpochs, options);
        _pipeline.encoder().setQbits(target);
    }
    acc = runEpochs(train, val, options.epochs, options);

    if (options.unfreezeBackbone)
        _pipeline.setBackboneFrozen(true);
    return acc;
}

double
LecaTrainer::trainCurriculum(const Dataset &train_set, const Dataset &val,
                             const LecaTrainOptions &options,
                             double *soft_acc, double *hard_acc)
{
    // Stage 1: soft training (no hardware effects).
    _pipeline.setModality(EncoderModality::Soft);
    const double soft = train(train_set, val, options);
    if (soft_acc)
        *soft_acc = soft;

    // Stage 2: hard training, initialised from the soft weights.
    _pipeline.setModality(EncoderModality::Hard);
    const double hard = train(train_set, val, options);
    if (hard_acc)
        *hard_acc = hard;

    // Stage 3: noisy fine-tuning of the hard model. Direct noisy
    // training from scratch converges poorly (Sec. 3.4); fine-tuning
    // inherits the hard weights by construction.
    _pipeline.setModality(EncoderModality::Noisy);
    LecaTrainOptions finetune = options;
    finetune.incrementalQbit = false; // keep the target Q_bit
    finetune.learningRate = options.learningRate * 0.3;
    finetune.epochs = std::max(1, options.epochs / 2);
    const double noisy = train(train_set, val, finetune);
    return noisy;
}

double
LecaTrainer::evaluate(const Dataset &ds, EncoderModality modality)
{
    const EncoderModality saved = _pipeline.modality();
    const float saved_scale = _pipeline.encoder().outScale().value[0];
    _pipeline.setModality(modality);
    // Keep the trained scale if we are not crossing the soft/hard
    // boundary; otherwise the reset seeded by setModality applies,
    // which is exactly the paper's naive soft->hard mapping.
    if ((saved == EncoderModality::Hard &&
         modality == EncoderModality::Noisy) ||
        (saved == EncoderModality::Noisy &&
         modality == EncoderModality::Hard)) {
        _pipeline.encoder().outScale().value[0] = saved_scale;
    }
    const double acc = _pipeline.evalAccuracy(ds);
    _pipeline.setModality(saved);
    _pipeline.encoder().outScale().value[0] = saved_scale;
    return acc;
}

} // namespace leca
