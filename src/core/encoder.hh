/**
 * @file
 * The LeCA encoder layer (Sec. 3.3) with its three training
 * modalities (Sec. 3.4):
 *
 *  - Soft:  a plain strided convolution followed by an STE quantizer —
 *           no hardware effects.
 *  - Hard:  the analytical circuit model in the forward path: raw-
 *           domain kernel flattening (Fig. 5(a)), PSF linear transfer,
 *           the exact SCM charge-redistribution recurrence of Eq. (3)
 *           on differential o-buffers with 4-bit+sign cap codes (STE),
 *           FVF linear transfer, and an ADC with a *trainable*
 *           quantization boundary. The backward pass is derived by
 *           hand through the recurrence.
 *  - Noisy: the hard model plus the extracted Monte-Carlo noise model
 *           of Sec. 5.3 (LUT mean transfers + Gaussian disturbances,
 *           per-code SCM step error, ADC offset).
 *
 * The single weight tensor [Nch, 3, K, K] is shared by all modalities;
 * hard/noisy require K = 2 (the Bayer flattening), matching the
 * hardware choice of Sec. 3.3.
 */

#ifndef LECA_CORE_ENCODER_HH
#define LECA_CORE_ENCODER_HH

#include <array>
#include <vector>

#include "analog/circuit_config.hh"
#include "analog/mismatch.hh"
#include "core/leca_config.hh"
#include "nn/layer.hh"
#include "sensor/sensor_config.hh"
#include "tensor/quant.hh"
#include "util/rng.hh"

namespace leca {

/** Which forward model the encoder runs (Sec. 3.4). */
enum class EncoderModality { Soft, Hard, Noisy };

/**
 * Single-layer compressive encoder with quantized output features in
 * [-1, 1].
 */
class LecaEncoder : public Layer
{
  public:
    LecaEncoder(const LecaConfig &config, const CircuitConfig &circuit,
                const SensorConfig &sensor, Rng &init_rng);

    Tensor forward(const Tensor &x, Mode mode) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;

    /**
     * Quantize the conv weight for int8 serving. Soft modality only:
     * the hard/noisy forward is the per-tap circuit recurrence, not a
     * GEMM, so there is nothing for int8 kernels to accelerate there
     * (and the cap-DAC already quantizes the weights in its own way).
     */
    void quantizeWeights(std::vector<QuantStat> &stats) override;
    std::vector<QuantTensor *> quantTensors() override { return {&_qweight}; }

    /** Switch forward model; resets the output scale to a sane value. */
    void setModality(EncoderModality modality);
    EncoderModality modality() const { return _modality; }

    /** Change Q_bit (the incremental training schedule, Sec. 3.4). */
    void setQbits(QBits qbits) { _config.qbits = qbits; }
    QBits qbits() const { return _config.qbits; }

    /** Install the extracted noise model used by the Noisy modality. */
    void setNoiseModel(AnalogNoiseModel model);

    /** Noise stream for the Noisy modality (owned by the caller). */
    void setNoiseRng(Rng *rng) { _noiseRng = rng; }

    /** Trained convolution weight [Nch, 3, K, K]. */
    Param &weight() { return _weight; }

    /**
     * Trainable output scale: the conv-output clip range in Soft mode,
     * the ADC full-scale boundary (volts) in Hard/Noisy mode.
     */
    Param &outScale() { return _outScale; }

    /** Weight magnitude that maps to the full cap-DAC code. */
    float weightScale() const { return _weightScale; }

    const LecaConfig &config() const { return _config; }
    const CircuitConfig &circuit() const { return _circuit; }

  private:
    LecaConfig _config;
    CircuitConfig _circuit;
    SensorConfig _sensor;
    EncoderModality _modality = EncoderModality::Soft;
    float _weightScale = 1.0f;

    Param _weight;
    Param _outScale;
    QuantTensor _qweight; //!< int8 weights; empty until quantizeWeights

    AnalogNoiseModel _noiseModel;
    bool _hasNoiseModel = false;
    Rng *_noiseRng = nullptr;

    // ---- Soft-mode cache ----
    Tensor _softInput; //!< forward input; backward recomputes im2col
    Tensor _softPre;   //!< conv output before scaling/quantization
    std::vector<int> _inShape;

    // ---- Hard/Noisy-mode cache (per output element, 16 steps) ----
    std::vector<float> _stepVin;   //!< PSF output per step
    std::vector<float> _stepVprev; //!< rail value before the step
    std::vector<float> _stepCap;   //!< effective capacitance (fF)
    std::vector<float> _diff;      //!< FVF differential per element

    Tensor forwardSoft(const Tensor &x, Mode mode);
    Tensor backwardSoft(const Tensor &grad_out);
    Tensor forwardHard(const Tensor &x, Mode mode, bool noisy);
    Tensor backwardHard(const Tensor &grad_out);

    /** Raw-domain tap description for hard mode. */
    struct Tap
    {
        int channel;   //!< RGB channel the tap reads
        int py, px;    //!< pixel within the 2x2 RGB block
        float factor;  //!< 1 for R/B, 0.5 for the duplicated G
    };
    static const std::array<Tap, 16> &rawTaps();
};

} // namespace leca

#endif // LECA_CORE_ENCODER_HH
