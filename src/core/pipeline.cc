#include "pipeline.hh"

#include "analog/mismatch.hh"
#include "data/serialize.hh"
#include "data/trainloop.hh"
#include "nn/loss.hh"
#include "util/check.hh"
#include "util/numeric.hh"

namespace leca {

LecaPipeline::LecaPipeline(const Options &options,
                           std::unique_ptr<Sequential> backbone)
    : _backbone(std::move(backbone)),
      _pixelNoise(options.sensor),
      _noiseRng(options.seed * 0x2545F4914F6CDD1DULL + 99)
{
    options.leca.validate();
    options.circuit.validate();
    Rng init(options.seed);
    _encoder = std::make_unique<LecaEncoder>(options.leca, options.circuit,
                                             options.sensor, init);
    _decoder = std::make_unique<LecaDecoder>(options.leca, init);
    LECA_CHECK(_backbone != nullptr, "pipeline needs a backbone");
    _backbone->freeze(true);

    // Extract the Sec. 5.3 noise model once so the Noisy modality is
    // ready whenever the trainer switches to it.
    Rng mc(options.seed ^ 0xA5A5A5A5ULL);
    _encoder->setNoiseModel(extractNoiseModel(options.circuit, 200, mc));
    _encoder->setNoiseRng(&_noiseRng);
}

void
LecaPipeline::setModality(EncoderModality modality)
{
    _encoder->setModality(modality);
}

Tensor
LecaPipeline::forward(const Tensor &images, Mode mode)
{
    const Tensor features = encodeFeatures(images, mode);
    const Tensor decoded = _decoder->forward(features, mode);
    return _backbone->forward(decoded, mode);
}

Tensor
LecaPipeline::decodeImages(const Tensor &images, Mode mode)
{
    const Tensor features = encodeFeatures(images, mode);
    return _decoder->forward(features, mode);
}

Tensor
LecaPipeline::encodeFeatures(const Tensor &images, Mode mode)
{
    // Only the noisy path materialises a perturbed copy of the frame
    // (pixel-array shot + read noise, Sec. 5.3); the other modalities
    // read the caller's frame in place.
    if (_encoder->modality() == EncoderModality::Noisy)
        return _encoder->forward(_pixelNoise.apply(images, _noiseRng),
                                 mode);
    return _encoder->forward(images, mode);
}

void
LecaPipeline::backward(const Tensor &grad_logits)
{
    const Tensor g_decoded = _backbone->backward(grad_logits);
    const Tensor g_features = _decoder->backward(g_decoded);
    _encoder->backward(g_features);
}

std::vector<Param *>
LecaPipeline::allParams()
{
    std::vector<Param *> params = _encoder->params();
    const auto dec = _decoder->params();
    params.insert(params.end(), dec.begin(), dec.end());
    const auto bb = _backbone->params();
    params.insert(params.end(), bb.begin(), bb.end());
    return params;
}

void
LecaPipeline::setBackboneFrozen(bool frozen)
{
    _backbone->freeze(frozen);
}

namespace {

/** Adapter exposing the whole pipeline as one serializable layer. */
class PipelineBundle : public Layer
{
  public:
    PipelineBundle(LecaEncoder &enc, LecaDecoder &dec, Sequential &bb)
        : _enc(enc), _dec(dec), _bb(bb)
    {
    }

    Tensor forward(const Tensor &x, Mode) override { return x; }
    Tensor backward(const Tensor &g) override { return g; }

    // leca-analyze: cold — parameter enumeration (checkpoint/optimizer setup)
    std::vector<Param *>
    params() override
    {
        std::vector<Param *> out = _enc.params();
        for (Param *p : _dec.params())
            out.push_back(p);
        for (Param *p : _bb.params())
            out.push_back(p);
        return out;
    }

    // leca-analyze: cold — state enumeration (checkpoint setup)
    std::vector<Tensor *>
    state() override
    {
        std::vector<Tensor *> out = _dec.state();
        for (Tensor *t : _bb.state())
            out.push_back(t);
        return out;
    }

    // leca-analyze: cold — one-shot weight conversion (setup)
    void
    quantizeWeights(std::vector<QuantStat> &stats) override
    {
        _enc.quantizeWeights(stats);
        _dec.quantizeWeights(stats);
        _bb.quantizeWeights(stats);
    }

    // leca-analyze: cold — quantized-tensor enumeration (checkpoint setup)
    std::vector<QuantTensor *>
    quantTensors() override
    {
        std::vector<QuantTensor *> out = _enc.quantTensors();
        for (QuantTensor *qt : _dec.quantTensors())
            out.push_back(qt);
        for (QuantTensor *qt : _bb.quantTensors())
            out.push_back(qt);
        return out;
    }

  private:
    LecaEncoder &_enc;
    LecaDecoder &_dec;
    Sequential &_bb;
};

} // namespace

std::size_t
LecaPipeline::QuantizationReport::fp32Bytes() const
{
    std::size_t total = 0;
    for (const QuantStat &s : layers)
        total += s.fp32Bytes;
    return total;
}

std::size_t
LecaPipeline::QuantizationReport::quantBytes() const
{
    std::size_t total = 0;
    for (const QuantStat &s : layers)
        total += s.quantBytes;
    return total;
}

float
LecaPipeline::QuantizationReport::maxAbsError() const
{
    float worst = 0.0f;
    for (const QuantStat &s : layers)
        worst = worst > s.maxAbsError ? worst : s.maxAbsError;
    return worst;
}

LecaPipeline::QuantizationReport
LecaPipeline::quantize()
{
    PipelineBundle bundle(*_encoder, *_decoder, *_backbone);
    QuantizationReport report;
    bundle.quantizeWeights(report.layers);
    _quantized = true;
    return report;
}

void
LecaPipeline::save(const std::string &path)
{
    PipelineBundle bundle(*_encoder, *_decoder, *_backbone);
    saveLayerState(bundle, path);
}

bool
LecaPipeline::load(const std::string &path)
{
    PipelineBundle bundle(*_encoder, *_decoder, *_backbone);
    return loadLayerState(bundle, path);
}

void
LecaPipeline::saveQuantized(const std::string &path)
{
    LECA_CHECK(_quantized, "saveQuantized before quantize()");
    PipelineBundle bundle(*_encoder, *_decoder, *_backbone);
    saveQuantizedState(bundle, path);
}

bool
LecaPipeline::loadQuantized(const std::string &path)
{
    PipelineBundle bundle(*_encoder, *_decoder, *_backbone);
    if (!loadQuantizedState(bundle, path))
        return false;
    // Restores bypass quantizeWeights, so build the resident execution
    // plans here; the HWC layouts derive from the restored CODES, so
    // this inference is bit-identical to a quantize()d pipeline's.
    _decoder->planQuantized();
    _backbone->planQuantized();
    _quantized = true;
    return true;
}

void
LecaPipeline::refreshStats(const Dataset &ds, int batch_size)
{
    LECA_CHECK(batch_size > 0, "refreshStats batch size ", batch_size);
    const int c = ds.images.size(1), h = ds.images.size(2);
    const int w = ds.images.size(3);
    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    _decoder->setStatsRefresh(true);
    _backbone->setStatsRefresh(true);
    for (int begin = 0; begin < ds.count(); begin += batch_size) {
        const int count = std::min(batch_size, ds.count() - begin);
        const Tensor batch = Tensor::borrow(
            {count, c, h, w}, ds.images.data() + begin * img_sz);
        forward(batch, Mode::Train);
    }
    _decoder->setStatsRefresh(false);
    _backbone->setStatsRefresh(false);
}

double
LecaPipeline::evalAccuracy(const Dataset &ds, int batch_size)
{
    LECA_CHECK(batch_size > 0, "evalAccuracy batch size ", batch_size);
    const int n = ds.count();
    if (n == 0)
        return 0.0;
    const int c = ds.images.size(1), h = ds.images.size(2);
    const int w = ds.images.size(3);
    const std::size_t img_sz = static_cast<std::size_t>(c) * h * w;
    int correct = 0;
    // Batches stay sequential — the encoder/decoder/backbone layers
    // cache per-call state, so parallelism lives inside each forward
    // (per-image conv, GEMM row panels) instead of across batches.
    // Each batch is a borrowed view of the dataset slab — no copy.
    for (int begin = 0; begin < n; begin += batch_size) {
        const int count = std::min(batch_size, n - begin);
        const Tensor batch = Tensor::borrow(
            {count, c, h, w}, ds.images.data() + begin * img_sz);
        const Tensor logits = forward(batch, Mode::Eval);
        const std::vector<int> labels(ds.labels.begin() + begin,
                                      ds.labels.begin() + begin + count);
        correct += roundToInt(accuracy(logits, labels) * count);
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

} // namespace leca
