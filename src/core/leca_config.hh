/**
 * @file
 * LeCA design-point configuration: the encoder parameters (K, N_ch,
 * Q_bit) of Sec. 3.3, the decoder hyper-parameters of Table 2, and the
 * compression ratio of Eq. (1).
 */

#ifndef LECA_CORE_LECA_CONFIG_HH
#define LECA_CORE_LECA_CONFIG_HH

#include "nn/quantize.hh"

namespace leca {

/** One LeCA encoder/decoder design point. */
struct LecaConfig
{
    // Encoder (Sec. 3.3). K is both kernel size and stride.
    int kernel = 2;
    int nch = 8;
    QBits qbits{3.0};
    int inChannels = 3;

    // Decoder (Table 2). The paper uses M = 15 DnCNN layers with
    // F = 64 filters; the bench suite defaults to a smaller decoder
    // that preserves the architecture at CPU-friendly cost.
    int decoderDncnnLayers = 3; //!< M
    int decoderFilters = 16;    //!< F
    int decoderKernel = 3;      //!< K_d

    /** Full-resolution reference bit depth (Q_full = 8). */
    static constexpr double qFull = 8.0;

    /** Compression ratio per Eq. (1). */
    double
    compressionRatio() const
    {
        return static_cast<double>(kernel) * kernel * inChannels * qFull
               / (static_cast<double>(nch) * qbits.bits());
    }
};

/**
 * Enumerate the (N_ch, Q_bit) pairs whose Eq. (1) ratio equals
 * @p target_cr for K = 2 (the Fig. 4(b) design-space sweep).
 */
std::vector<LecaConfig> designPointsForCr(double target_cr,
                                          int max_nch = 16);

} // namespace leca

#endif // LECA_CORE_LECA_CONFIG_HH
