/**
 * @file
 * LeCA design-point configuration: the encoder parameters (K, N_ch,
 * Q_bit) of Sec. 3.3, the decoder hyper-parameters of Table 2, and the
 * compression ratio of Eq. (1).
 */

#ifndef LECA_CORE_LECA_CONFIG_HH
#define LECA_CORE_LECA_CONFIG_HH

#include "nn/quantize.hh"
#include "util/check.hh"

namespace leca {

/** One LeCA encoder/decoder design point. */
struct LecaConfig
{
    // Encoder (Sec. 3.3). K is both kernel size and stride.
    int kernel = 2;
    int nch = 8;
    QBits qbits{3.0};
    int inChannels = 3;

    // Decoder (Table 2). The paper uses M = 15 DnCNN layers with
    // F = 64 filters; the bench suite defaults to a smaller decoder
    // that preserves the architecture at CPU-friendly cost.
    int decoderDncnnLayers = 3; //!< M
    int decoderFilters = 16;    //!< F
    int decoderKernel = 3;      //!< K_d

    /** Full-resolution reference bit depth (Q_full = 8). */
    static constexpr double qFull = 8.0;

    /** Compression ratio per Eq. (1). */
    double
    compressionRatio() const
    {
        return static_cast<double>(kernel) * kernel * inChannels * qFull
               / (static_cast<double>(nch) * qbits.bits());
    }

    /**
     * Validate the design point before building encoder/decoder models
     * from it. Throws leca::CheckError on violation.
     */
    void
    validate() const
    {
        LECA_CHECK(kernel >= 1 && kernel <= 16, "encoder kernel ", kernel,
                   " outside [1, 16]");
        LECA_CHECK(nch >= 1 && nch <= 256, "encoder channels ", nch,
                   " outside [1, 256]");
        LECA_CHECK(inChannels >= 1, "input channels ", inChannels);
        // levels() validates the Q_bit value itself.
        LECA_CHECK(qbits.levels() >= 2, "quantizer needs >= 2 levels");
        LECA_CHECK(decoderDncnnLayers >= 0, "decoder DnCNN layers ",
                   decoderDncnnLayers);
        LECA_CHECK(decoderFilters >= 1, "decoder filters ", decoderFilters);
        LECA_CHECK(decoderKernel >= 1 && decoderKernel % 2 == 1,
                   "decoder kernel ", decoderKernel,
                   " must be odd and positive");
        LECA_CHECK(compressionRatio() >= 1.0,
                   "design point expands instead of compressing: CR = ",
                   compressionRatio());
    }
};

/**
 * Enumerate the (N_ch, Q_bit) pairs whose Eq. (1) ratio equals
 * @p target_cr for K = 2 (the Fig. 4(b) design-space sweep).
 */
std::vector<LecaConfig> designPointsForCr(double target_cr,
                                          int max_nch = 16);

} // namespace leca

#endif // LECA_CORE_LECA_CONFIG_HH
