#include "encoder.hh"

#include <algorithm>
#include <cmath>

#include "analog/buffers.hh"
#include "analog/scm.hh"
#include "nn/init.hh"
#include "tensor/kernels.hh"
#include "tensor/ops.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/logging.hh"
#include "util/numeric.hh"
#include "util/parallel.hh"

namespace leca {

LecaEncoder::LecaEncoder(const LecaConfig &config,
                         const CircuitConfig &circuit,
                         const SensorConfig &sensor, Rng &init_rng)
    : _config(config), _circuit(circuit), _sensor(sensor),
      _weight(Tensor({config.nch, config.inChannels, config.kernel,
                      config.kernel})),
      _outScale(Tensor({1}))
{
    config.validate();
    circuit.validate();
    kaimingInit(_weight.value,
                config.inChannels * config.kernel * config.kernel,
                init_rng);
    _outScale.value[0] = 1.0f;
}

std::vector<Param *>
LecaEncoder::params()
{
    return {&_weight, &_outScale};
}

void
LecaEncoder::quantizeWeights(std::vector<QuantStat> &stats)
{
    if (_modality != EncoderModality::Soft)
        return; // hard/noisy forwards are the circuit model, not a GEMM
    const int kdim =
        _config.inChannels * _config.kernel * _config.kernel;
    _qweight = quantizeRowMajor(_weight.value, _config.nch, kdim);
    stats.push_back({"Encoder conv " + std::to_string(_config.inChannels)
                         + "->" + std::to_string(_config.nch) + " k"
                         + std::to_string(_config.kernel),
                     _qweight.fp32Bytes(), _qweight.quantBytes(),
                     quantMaxAbsError(_weight.value, _qweight)});
}

void
LecaEncoder::setModality(EncoderModality modality)
{
    if (modality != EncoderModality::Soft) {
        LECA_CHECK(_config.kernel == 2,
                   "hardware modalities require K = 2 (Sec. 3.3), got K = ",
                   _config.kernel);
    }
    if (modality != _modality) {
        // The output scale lives in different units per modality
        // (conv units vs volts); re-seed it on a switch. This is the
        // "no trivial mapping" of Sec. 6.2 made concrete.
        _outScale.value[0] =
            modality == EncoderModality::Soft ? 1.0f : 0.3f;
    }
    _modality = modality;
}

void
LecaEncoder::setNoiseModel(AnalogNoiseModel model)
{
    _noiseModel = std::move(model);
    _hasNoiseModel = true;
}

const std::array<LecaEncoder::Tap, 16> &
LecaEncoder::rawTaps()
{
    // Raw-domain 4x4 block in row-major order; RGGB with duplicated
    // green (Fig. 5(a)). Channel indices: 0 = R, 1 = G, 2 = B.
    static const std::array<Tap, 16> taps = {{
        {0, 0, 0, 1.0f}, {1, 0, 0, 0.5f}, {0, 0, 1, 1.0f}, {1, 0, 1, 0.5f},
        {1, 0, 0, 0.5f}, {2, 0, 0, 1.0f}, {1, 0, 1, 0.5f}, {2, 0, 1, 1.0f},
        {0, 1, 0, 1.0f}, {1, 1, 0, 0.5f}, {0, 1, 1, 1.0f}, {1, 1, 1, 0.5f},
        {1, 1, 0, 0.5f}, {2, 1, 0, 1.0f}, {1, 1, 1, 0.5f}, {2, 1, 1, 1.0f},
    }};
    return taps;
}

Tensor
LecaEncoder::forward(const Tensor &x, Mode mode)
{
    switch (_modality) {
      case EncoderModality::Soft:
        return forwardSoft(x, mode);
      case EncoderModality::Hard:
        return forwardHard(x, mode, false);
      case EncoderModality::Noisy:
        return forwardHard(x, mode, true);
    }
    panic("unknown modality");
}

Tensor
LecaEncoder::backward(const Tensor &grad_out)
{
    if (_modality == EncoderModality::Soft)
        return backwardSoft(grad_out);
    return backwardHard(grad_out);
}

// ---------------------------------------------------------------------
// Soft modality: conv (stride = K) -> scale -> STE quantizer.
// ---------------------------------------------------------------------

Tensor
LecaEncoder::forwardSoft(const Tensor &x, Mode mode)
{
    LECA_CHECK(x.dim() == 4 && x.size(1) == _config.inChannels,
               "soft encoder expects [N,", _config.inChannels,
               ",H,W] input, got ", detail::formatShape(x.shape()));
    const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    const int k = _config.kernel;
    const int oh = h / k, ow = w / k;
    const int nch = _config.nch;

    _inShape = x.shape();

    Tensor pre({n, nch, oh, ow});
    if (!_qweight.empty()) {
        LECA_CHECK(mode == Mode::Eval,
                   "quantized encoder cannot run a Train-mode forward");
        const std::size_t in_sz = static_cast<std::size_t>(c) * h * w;
        const std::size_t out_sz =
            static_cast<std::size_t>(nch) * oh * ow;
        parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
            for (std::int64_t i = n0; i < n1; ++i)
                convForwardQuant(
                    x.data() + static_cast<std::size_t>(i) * in_sz, c, h,
                    w, k, k, k, 0, _qweight, nullptr,
                    pre.data() + static_cast<std::size_t>(i) * out_sz);
        });
    } else {
        const Tensor wmat = _weight.value.reshape({nch, c * k * k});
        const Tensor no_bias;
        // Every image packs straight into arena scratch
        // (conv2dImageInto): no column matrix, no per-image allocation.
        // Backward recomputes the im2col it needs from the cached input.
        parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
            for (int i = static_cast<int>(n0); i < n1; ++i)
                conv2dImageInto(x, i, wmat, no_bias, k, k, k, 0, pre);
        });
    }

    const float s = std::max(_outScale.value[0], 0.05f);
    const int levels = _config.qbits.levels();
    Tensor features(pre.shape());
    const float *pp = pre.data();
    float *fp = features.data();
    parallelFor(0, static_cast<std::int64_t>(pre.numel()), 4096,
                [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        fp[i] =
                            quantizeUniform(pp[i] / s, -1.0f, 1.0f, levels);
                });
    if (mode == Mode::Train) {
        _softInput = x;
        _softPre = std::move(pre);
    }
    return features;
}

Tensor
LecaEncoder::backwardSoft(const Tensor &grad_out)
{
    LECA_CHECK(_softPre.numel() > 0,
                "soft encoder backward without forward");
    const int n = _inShape[0], c = _inShape[1];
    const int h = _inShape[2], w = _inShape[3];
    const int k = _config.kernel;
    const int nch = _config.nch;
    const int oh = h / k, ow = w / k;

    const float s = std::max(_outScale.value[0], 0.05f);

    // STE through the quantizer and scale division. The g_s summation
    // stays serial so the double accumulation order is fixed.
    Tensor g_pre(grad_out.shape());
    const float *go = grad_out.data();
    const float *sp = _softPre.data();
    float *gp = g_pre.data();
    double g_s = 0.0;
    for (std::size_t i = 0; i < grad_out.numel(); ++i) {
        const float ratio = sp[i] / s;
        if (ratio >= -1.0f && ratio <= 1.0f) {
            gp[i] = go[i] / s;
            g_s += static_cast<double>(go[i]) * (-sp[i]) / (s * s);
        } else {
            gp[i] = 0.0f;
        }
    }
    _outScale.grad[0] += static_cast<float>(g_s);

    const int kdim = c * k * k;
    const std::int64_t ohow = static_cast<std::int64_t>(oh) * ow;
    const std::size_t in_sz = static_cast<std::size_t>(c) * h * w;
    Tensor dwmat({nch, kdim});
    // Per-image dW partials in one arena slab owned by the calling
    // thread's scope, folded serially in ascending image order: the
    // same per-image matrices the serial loop added, in the same order,
    // with zero heap allocation.
    Arena::Scope scope;
    float *partials = Arena::local().alloc(
        static_cast<std::size_t>(n) * nch * kdim);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            // dW_i = dY * cols^T, reading the contiguous [nch, OH*OW]
            // slab of g_pre in place and recomputing this image's
            // column matrix into arena scratch.
            const float *dy =
                g_pre.data() + static_cast<std::size_t>(i) * nch * ohow;
            float *dw = partials + static_cast<std::size_t>(i) * nch * kdim;
            Arena::Scope image_scope;
            float *cols = Arena::local().alloc(
                static_cast<std::size_t>(kdim) * ohow);
            im2colRaw(_softInput.data()
                          + static_cast<std::size_t>(i) * in_sz,
                      c, h, w, k, k, k, 0, cols);
            gemmBlocked(nch, kdim, ohow, dy, ohow, false, cols, ohow, true,
                        dw, kdim, false);
        }
    });
    float *dwp = dwmat.data();
    for (int i = 0; i < n; ++i) {
        const float *dw =
            partials + static_cast<std::size_t>(i) * nch * kdim;
        for (std::size_t e = 0;
             e < static_cast<std::size_t>(nch) * kdim; ++e)
            dwp[e] += dw[e];
    }
    _weight.grad += dwmat.reshape({nch, c, k, k});

    _softInput = Tensor();
    _softPre = Tensor();
    // The encoder is the first pipeline stage; no upstream gradient.
    return Tensor(_inShape);
}

// ---------------------------------------------------------------------
// Hard / Noisy modality: the analog circuit model of Sec. 3.4 / 5.3.
// ---------------------------------------------------------------------

Tensor
LecaEncoder::forwardHard(const Tensor &x, Mode mode, bool noisy)
{
    LECA_CHECK(x.dim() == 4 && x.size(1) == 3,
               "hard encoder expects [N,3,H,W] input, got ",
               detail::formatShape(x.shape()));
    LECA_CHECK(x.size(2) % 2 == 0 && x.size(3) % 2 == 0,
               "hard encoder needs even spatial extents for the 2x2 Bayer "
               "flattening, got ", x.size(2), "x", x.size(3));
    LECA_CHECK(!noisy || (_hasNoiseModel && _noiseRng),
               "noisy modality needs a noise model and rng installed");
    const int n = x.size(0), h = x.size(2), w = x.size(3);
    const int oh = h / 2, ow = w / 2;
    const int nch = _config.nch;
    const int steps = _circuit.dacSteps();
    const float wscale = _weightScale;
    const double unit = _circuit.unitCapFf();
    const double vcm = _circuit.vCm;
    const int levels = _config.qbits.levels();
    const float fs = std::max(_outScale.value[0], 0.02f);

    const SourceFollower psf(_circuit.psf);
    const SourceFollower fvf(_circuit.fvf);
    const auto &taps = rawTaps();

    const std::size_t elems =
        static_cast<std::size_t>(n) * nch * oh * ow;
    const bool cache = mode == Mode::Train;
    if (cache) {
        _stepVin.assign(elems * 16, 0.0f);
        _stepVprev.assign(elems * 16, 0.0f);
        _stepCap.assign(elems * 16, 0.0f);
        _diff.assign(elems, 0.0f);
        _inShape = x.shape();
    }

    Tensor features({n, nch, oh, ow});
    // One pre-split noise stream per image (forked before the parallel
    // region), so noise draws depend only on the image index and the
    // output is bit-identical at every thread count.
    std::vector<Rng> noise_rngs;
    if (noisy)
        noise_rngs = Rng::split(*_noiseRng, static_cast<std::size_t>(n));
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (int i = static_cast<int>(n0); i < n1; ++i) {
        Rng *rng = noisy ? &noise_rngs[static_cast<std::size_t>(i)] : nullptr;
        // Element index derived from the loop indices, not a running
        // counter, so images write disjoint cache slices.
        std::size_t e = static_cast<std::size_t>(i) * nch * oh * ow;
        for (int kch = 0; kch < nch; ++kch) {
            for (int by = 0; by < oh; ++by) {
                for (int bx = 0; bx < ow; ++bx, ++e) {
                    double v_plus = vcm, v_minus = vcm;
                    for (int t = 0; t < 16; ++t) {
                        const Tap &tap = taps[static_cast<std::size_t>(t)];
                        const float w_tap =
                            _weight.value.at(kch, tap.channel, tap.py,
                                             tap.px) * tap.factor;
                        int mag = roundToInt(
                            std::abs(w_tap) / wscale * steps);
                        mag = std::clamp(mag, 0, steps);
                        const bool neg = w_tap < 0.0f;
                        const double cap = unit * mag;

                        const double x_val =
                            x.at(i, tap.channel, 2 * by + tap.py,
                                 2 * bx + tap.px);
                        const double vpix =
                            _sensor.digitalToVoltage(x_val);
                        double vin;
                        if (noisy) {
                            vin = rng->gaussian(
                                _noiseModel.psf.meanTransfer(vpix),
                                _noiseModel.psf.sigma(vpix));
                        } else {
                            vin = psf.linearModel(vpix);
                        }

                        double &rail = neg ? v_minus : v_plus;
                        if (cache) {
                            _stepVin[e * 16 + t] =
                                static_cast<float>(vin);
                            _stepVprev[e * 16 + t] =
                                static_cast<float>(rail);
                            _stepCap[e * 16 + t] =
                                static_cast<float>(cap);
                        }
                        if (mag > 0) {
                            double next = ScMultiplier::idealStep(
                                _circuit, rail, vin, cap);
                            if (noisy) {
                                // Fine-grained eps(V_in, code) surface
                                // when extracted; per-code mean
                                // otherwise (Sec. 5.3, item 2).
                                const double eps_mean =
                                    _noiseModel.scm.epsSurface.empty()
                                        ? _noiseModel.scm.epsMean[
                                              static_cast<std::size_t>(
                                                  mag)]
                                        : _noiseModel.scm.epsSurface(
                                              vin, mag);
                                next -= rng->gaussian(
                                    eps_mean,
                                    _noiseModel.scm.epsSigma[
                                        static_cast<std::size_t>(mag)]);
                            }
                            rail = next;
                        }
                    }
                    double p, m;
                    if (noisy) {
                        p = rng->gaussian(
                            _noiseModel.fvf.meanTransfer(v_plus),
                            _noiseModel.fvf.sigma(v_plus));
                        m = rng->gaussian(
                            _noiseModel.fvf.meanTransfer(v_minus),
                            _noiseModel.fvf.sigma(v_minus));
                    } else {
                        p = fvf.linearModel(v_plus);
                        m = fvf.linearModel(v_minus);
                    }
                    double diff = p - m;
                    if (noisy) {
                        diff += rng->gaussian(
                            0.0, _noiseModel.adcOffsetSigma);
                    }
                    const int code = quantizeCode(
                        static_cast<float>(diff), -fs, fs, levels);
                    features.at(i, kch, by, bx) =
                        2.0f * static_cast<float>(code)
                        / static_cast<float>(levels - 1) - 1.0f;
                    if (cache)
                        _diff[e] = static_cast<float>(diff);
                }
            }
        }
    }
    });
    return features;
}

Tensor
LecaEncoder::backwardHard(const Tensor &grad_out)
{
    LECA_CHECK(!_diff.empty(), "hard encoder backward without forward");
    const int n = _inShape[0];
    const int oh = _inShape[2] / 2, ow = _inShape[3] / 2;
    const int nch = _config.nch;
    const int steps = _circuit.dacSteps();
    const float wscale = _weightScale;
    const double unit = _circuit.unitCapFf();
    const double cout = _circuit.cOutFf;
    const double vcm = _circuit.vCm;
    const float fs = std::max(_outScale.value[0], 0.02f);
    const double fvf_gain = _circuit.fvf.gain;
    const auto &taps = rawTaps();

    const std::size_t elems = _diff.size();
    // Per-element gradient contributions, computed in parallel and
    // folded serially below in exactly the order the serial loop used
    // (ascending element, descending tap), so the accumulated weight
    // and scale gradients stay bit-identical at every thread count.
    std::vector<float> tap_grads(elems * 16, 0.0f);
    std::vector<double> fs_grads(elems, 0.0);

    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (int i = static_cast<int>(n0); i < n1; ++i) {
        std::size_t e = static_cast<std::size_t>(i) * nch * oh * ow;
        for (int kch = 0; kch < nch; ++kch) {
            for (int by = 0; by < oh; ++by) {
                for (int bx = 0; bx < ow; ++bx, ++e) {
                    const float g_feat = grad_out.at(i, kch, by, bx);
                    if (g_feat == 0.0f)
                        continue;
                    const double diff = _diff[e];
                    if (diff < -fs || diff > fs)
                        continue; // clipped STE region
                    // feature ~= diff / fs under the STE.
                    const double g_diff = g_feat / fs;
                    fs_grads[e] = g_feat * (-diff / (fs * fs));

                    double g_plus = g_diff * fvf_gain;
                    double g_minus = -g_diff * fvf_gain;

                    // Reverse the 16-step recurrence.
                    for (int t = 15; t >= 0; --t) {
                        const Tap &tap =
                            taps[static_cast<std::size_t>(t)];
                        const float w_rgb = _weight.value.at(
                            kch, tap.channel, tap.py, tap.px);
                        const float w_tap = w_rgb * tap.factor;
                        const bool neg = w_tap < 0.0f;
                        double &g_rail = neg ? g_minus : g_plus;
                        const double cap = _stepCap[e * 16 + t];
                        const double vin = _stepVin[e * 16 + t];
                        const double v_prev = _stepVprev[e * 16 + t];

                        double g_cap;
                        if (cap > 0.0) {
                            const double denom = cout + cap;
                            const double v_after =
                                (cap * (2.0 * vcm - vin)
                                 + cout * v_prev) / denom;
                            g_cap = g_rail
                                    * ((2.0 * vcm - vin) - v_after)
                                    / denom;
                            g_rail = g_rail * cout / denom;
                        } else {
                            // STE through the zero code: gradient of
                            // the limit cap -> 0+ keeps dead taps
                            // trainable.
                            g_cap = g_rail
                                    * ((2.0 * vcm - vin) - v_prev)
                                    / cout;
                        }
                        // cap = unit * round(|w_tap|/wscale * steps);
                        // STE over the rounding.
                        const double dcap_dwtap =
                            (neg ? -1.0 : 1.0) * unit * steps / wscale;
                        const double g_wtap = g_cap * dcap_dwtap;
                        tap_grads[e * 16 + static_cast<std::size_t>(t)] =
                            static_cast<float>(g_wtap * tap.factor);
                    }
                }
            }
        }
    }
    });

    // Serial fold in the serial loop's accumulation order.
    double g_fs_total = 0.0;
    for (std::size_t e = 0; e < elems; ++e) {
        g_fs_total += fs_grads[e];
        const int kch = static_cast<int>(e / (static_cast<std::size_t>(oh)
                                              * ow))
                        % nch;
        for (int t = 15; t >= 0; --t) {
            const float g = tap_grads[e * 16 + static_cast<std::size_t>(t)];
            if (g == 0.0f)
                continue;
            const Tap &tap = taps[static_cast<std::size_t>(t)];
            _weight.grad.at(kch, tap.channel, tap.py, tap.px) += g;
        }
    }
    _outScale.grad[0] += static_cast<float>(g_fs_total);

    _diff.clear();
    _stepVin.clear();
    _stepVprev.clear();
    _stepCap.clear();
    return Tensor(_inShape);
}

} // namespace leca
