#include "decoder.hh"

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv.hh"
#include "nn/conv_transpose.hh"

namespace leca {

LecaDecoder::LecaDecoder(const LecaConfig &config, Rng &init_rng)
{
    config.validate();
    const int c = config.inChannels;
    const int f = config.decoderFilters;
    const int kd = config.decoderKernel;
    const int pad = kd / 2;

    // Upsample the ofmap back to the image extent (Table 2, row 1).
    _net.emplace<ConvTranspose2d>(config.nch, c, config.kernel,
                                  config.kernel, true, init_rng);
    // M DnCNN-style denoising blocks (Table 2, row 2).
    for (int m = 0; m < config.decoderDncnnLayers; ++m) {
        _net.emplace<Conv2d>(c, c, kd, 1, pad, true, init_rng);
        _net.emplace<Relu>();
    }
    // Filtered head (Table 2, rows 3-4).
    _net.emplace<Conv2d>(c, f, kd, 1, pad, false, init_rng);
    _net.emplace<BatchNorm2d>(f);
    _net.emplace<Relu>();
    _net.emplace<Conv2d>(f, c, kd, 1, pad, true, init_rng);
}

Tensor
LecaDecoder::forward(const Tensor &x, Mode mode)
{
    return _net.forward(x, mode);
}

Tensor
LecaDecoder::backward(const Tensor &grad_out)
{
    return _net.backward(grad_out);
}

std::size_t
LecaDecoder::parameterCount()
{
    std::size_t count = 0;
    for (Param *p : params())
        count += p->value.numel();
    return count;
}

} // namespace leca
