#include "parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <thread>

#include "util/check.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace leca {

namespace {

/** True while the current thread is executing pool work: nested
 *  parallel regions degrade to serial execution instead of deadlocking
 *  on the pool's own workers. */
thread_local bool t_inParallelRegion = false;

int
threadCountFromEnv()
{
    const char *env = std::getenv("LECA_THREADS");
    if (env && env[0] != '\0') {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1 && parsed <= 256)
            return static_cast<int>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

/**
 * The global worker pool. One task (a runChunks call) runs at a time,
 * serialized by _runMutex. A task is published under _taskMutex; the
 * submitting thread and the sleeping workers then claim chunk indices
 * from a shared atomic counter until it runs dry, so load balances
 * dynamically while the chunk -> work mapping stays fixed. A new task
 * cannot be published while any thread is still inside the claiming
 * loop of the previous one (_activeClaimers gate), which keeps the
 * published task state race-free for late-waking workers.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool(threadCountFromEnv());
        return pool;
    }

    ~ThreadPool()
    {
        MutexLock run_lock(_runMutex);
        MutexLock lock(_configMutex);
        stopWorkers();
    }

    int
    threads() LECA_EXCLUDES(_configMutex)
    {
        MutexLock lock(_configMutex);
        return _threads;
    }

    void
    resize(int threads) LECA_EXCLUDES(_runMutex, _configMutex)
    {
        LECA_CHECK(threads >= 1 && threads <= 256,
                   "thread count must be in [1, 256], got ", threads);
        LECA_CHECK(!t_inParallelRegion,
                   "setThreadCount from inside a parallel region");
        MutexLock run_lock(_runMutex);
        MutexLock lock(_configMutex);
        if (threads == _threads)
            return;
        stopWorkers();
        _threads = threads;
    }

    void
    run(std::int64_t chunk_count, FunctionRef<void(std::int64_t)> fn)
        LECA_EXCLUDES(_runMutex)
    {
        if (chunk_count <= 0)
            return;
        if (t_inParallelRegion || chunk_count == 1 || threads() <= 1) {
            runSerial(chunk_count, fn);
            return;
        }
        MutexLock run_lock(_runMutex);
        {
            MutexLock lock(_configMutex);
            if (_workers.empty() && _threads > 1)
                startWorkers();
        }
        beginTask(chunk_count, fn);
        claimChunks();
        finishTask();
    }

    /** See poolBarrier() in the header. One chunk per pool thread;
     *  every chunk body blocks in the latch after running fn, so no
     *  thread can claim a second chunk — which forces each of the
     *  @c _threads chunks onto a distinct thread. */
    void
    barrier(FunctionRef<void()> fn) LECA_EXCLUDES(_runMutex)
    {
        if (t_inParallelRegion || threads() <= 1) {
            fn();
            return;
        }
        MutexLock run_lock(_runMutex);
        int participants;
        {
            MutexLock lock(_configMutex);
            if (_workers.empty() && _threads > 1)
                startWorkers();
            participants = _threads;
        }
        Mutex latch_mutex;
        std::condition_variable latch_cv;
        int arrived = 0;
        const auto arrive_and_wait = [&] {
            UniqueLock lock(latch_mutex);
            if (++arrived == participants)
                latch_cv.notify_all();
            while (arrived < participants)
                latch_cv.wait(lock.raw());
        };
        // Named so the FunctionRef passed to beginTask (non-owning)
        // stays valid until finishTask drains the last claimer.
        const auto body = [&](std::int64_t) {
            try {
                fn();
            } catch (...) {
                arrive_and_wait(); // release the others before rethrow
                throw;
            }
            arrive_and_wait();
        };
        beginTask(participants, body);
        claimChunks();
        finishTask();
    }

  private:
    explicit ThreadPool(int threads) : _threads(threads) {}

    void
    runSerial(std::int64_t chunk_count, FunctionRef<void(std::int64_t)> fn)
    {
        const bool was_in_region = t_inParallelRegion;
        t_inParallelRegion = true;
        try {
            for (std::int64_t c = 0; c < chunk_count; ++c)
                fn(c);
        } catch (...) {
            t_inParallelRegion = was_in_region;
            throw;
        }
        t_inParallelRegion = was_in_region;
    }

    // ---- task lifecycle (_runMutex held by the submitting thread) ---

    void
    beginTask(std::int64_t chunk_count, FunctionRef<void(std::int64_t)> fn)
        LECA_EXCLUDES(_taskMutex)
    {
        UniqueLock lock(_taskMutex);
        // Wait out stragglers from the previous task so the fields
        // below are never written while another thread reads them.
        while (_activeClaimers != 0)
            _idle.wait(lock.raw());
        _taskFn = fn;
        _chunkCount = chunk_count;
        _nextChunk.store(0, std::memory_order_relaxed);
        _pendingChunks = chunk_count;
        _error = nullptr;
        ++_generation;
        _activeClaimers = 1; // the submitting thread
        _wake.notify_all();
    }

    /** Claim and run chunks until the current task runs dry. The
     *  caller must be registered in _activeClaimers. _taskFn and
     *  _chunkCount are read without the lock: they are published
     *  before the wake-up that registered this claimer and stay
     *  frozen until _activeClaimers drains back to zero. */
    void
    claimChunks() LECA_EXCLUDES(_taskMutex)
    {
        t_inParallelRegion = true;
        for (;;) {
            const std::int64_t c =
                _nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= _chunkCount)
                break;
            try {
                _taskFn(c);
            } catch (...) {
                MutexLock lock(_taskMutex);
                if (!_error)
                    _error = std::current_exception();
            }
            MutexLock lock(_taskMutex);
            if (--_pendingChunks == 0)
                _done.notify_all();
        }
        t_inParallelRegion = false;
        MutexLock lock(_taskMutex);
        if (--_activeClaimers == 0)
            _idle.notify_all();
    }

    void
    finishTask() LECA_EXCLUDES(_taskMutex)
    {
        UniqueLock lock(_taskMutex);
        while (_pendingChunks != 0)
            _done.wait(lock.raw());
        _taskFn = FunctionRef<void(std::int64_t)>();
        if (_error) {
            std::exception_ptr err = _error;
            _error = nullptr;
            std::rethrow_exception(err);
        }
    }

    // ---- worker management (caller holds _configMutex) --------------

    // leca-analyze: cold — configure-time worker launch
    void
    startWorkers() LECA_REQUIRES(_configMutex) LECA_EXCLUDES(_taskMutex)
    {
        {
            MutexLock lock(_taskMutex);
            _stopping = false;
        }
        _workers.reserve(static_cast<std::size_t>(_threads - 1));
        for (int i = 0; i < _threads - 1; ++i)
            _workers.emplace_back([this] { workerLoop(); });
    }

    void
    stopWorkers() LECA_REQUIRES(_configMutex) LECA_EXCLUDES(_taskMutex)
    {
        {
            MutexLock lock(_taskMutex);
            _stopping = true;
            _wake.notify_all();
        }
        for (auto &worker : _workers)
            worker.join();
        _workers.clear();
    }

    void
    workerLoop() LECA_EXCLUDES(_taskMutex)
    {
        std::uint64_t seen_generation = 0;
        for (;;) {
            {
                UniqueLock lock(_taskMutex);
                while (!_stopping && _generation == seen_generation)
                    _wake.wait(lock.raw());
                if (_stopping)
                    return;
                seen_generation = _generation;
                ++_activeClaimers;
            }
            claimChunks();
        }
    }

    Mutex _runMutex; //!< one task at a time

    Mutex _configMutex;
    int _threads LECA_GUARDED_BY(_configMutex);
    std::vector<std::thread> _workers LECA_GUARDED_BY(_configMutex);

    Mutex _taskMutex;
    std::condition_variable _wake;
    std::condition_variable _done;
    std::condition_variable _idle;
    // _taskFn / _chunkCount are guarded by protocol, not by _taskMutex:
    // written in beginTask only after _activeClaimers drained to zero,
    // read lock-free by registered claimers (see claimChunks).
    FunctionRef<void(std::int64_t)> _taskFn;
    std::int64_t _chunkCount = 0;
    std::atomic<std::int64_t> _nextChunk{0};
    std::int64_t _pendingChunks LECA_GUARDED_BY(_taskMutex) = 0;
    std::int64_t _activeClaimers LECA_GUARDED_BY(_taskMutex) = 0;
    std::uint64_t _generation LECA_GUARDED_BY(_taskMutex) = 0;
    std::exception_ptr _error LECA_GUARDED_BY(_taskMutex) = nullptr;
    bool _stopping LECA_GUARDED_BY(_taskMutex) = false;
};

} // namespace

int
threadCount()
{
    return ThreadPool::instance().threads();
}

void
setThreadCount(int threads)
{
    ThreadPool::instance().resize(threads);
}

namespace detail {

void
runChunks(std::int64_t chunk_count, FunctionRef<void(std::int64_t)> fn)
{
    ThreadPool::instance().run(chunk_count, fn);
}

} // namespace detail

void
poolBarrier(FunctionRef<void()> fn)
{
    ThreadPool::instance().barrier(fn);
}

void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            FunctionRef<void(std::int64_t, std::int64_t)> fn)
{
    const std::int64_t n = end - begin;
    if (n <= 0)
        return;
    LECA_CHECK(grain >= 1, "parallelFor grain must be >= 1, got ", grain);
    detail::runChunks(detail::chunkCount(n, grain), [&](std::int64_t c) {
        const std::int64_t lo = begin + c * grain;
        const std::int64_t hi = lo + grain < end ? lo + grain : end;
        fn(lo, hi);
    });
}

AsyncTask::~AsyncTask()
{
    if (_thread.joinable())
        _thread.join();
}

void
AsyncTask::run(std::function<void()> fn)
{
    LECA_CHECK(!_running, "AsyncTask::run with a task already pending");
    if (_thread.joinable())
        _thread.join();
    _error = nullptr;
    _running = true;
    _thread = std::thread([this, fn = std::move(fn)] {
        // The task body counts as a parallel region: parallelFor calls
        // it makes run serially on this thread, keeping the global pool
        // free for the foreground compute it overlaps with.
        t_inParallelRegion = true;
        try {
            fn();
        } catch (...) {
            _error = std::current_exception();
        }
    });
}

void
AsyncTask::wait()
{
    if (!_running)
        return;
    _thread.join();
    _running = false;
    if (_error) {
        std::exception_ptr err = _error;
        _error = nullptr;
        std::rethrow_exception(err);
    }
}

ServiceThread::~ServiceThread()
{
    if (_thread.joinable())
        _thread.join();
}

void
ServiceThread::start(std::function<void()> fn)
{
    LECA_CHECK(!_running, "ServiceThread::start while already running");
    if (_thread.joinable())
        _thread.join();
    _error = nullptr;
    _running = true;
    // Deliberately NOT marked as a parallel region: service threads are
    // foreground compute owners (the serve dispatcher) and contend for
    // the pool through ThreadPool::run's one-task-at-a-time gate.
    _thread = std::thread([this, fn = std::move(fn)] {
        try {
            fn();
        } catch (...) {
            _error = std::current_exception();
        }
    });
}

void
ServiceThread::join()
{
    if (!_running)
        return;
    _thread.join();
    _running = false;
    if (_error) {
        std::exception_ptr err = _error;
        _error = nullptr;
        std::rethrow_exception(err);
    }
}

} // namespace leca
