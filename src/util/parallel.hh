/**
 * @file
 * Deterministic parallel execution context for the whole simulator.
 *
 * A single lazily-initialized global thread pool (sized from the
 * LECA_THREADS environment variable, default hardware_concurrency,
 * 1 = fully serial) executes every data-parallel loop in the
 * tensor/nn/compression/sensor stack through two primitives:
 *
 *   parallelFor(begin, end, grain, fn)     — disjoint-write loops
 *   parallelReduce(begin, end, grain, ...) — ordered combination of
 *                                            per-chunk partials
 *
 * Determinism policy (see DESIGN.md): results are bit-identical for
 * every thread count. parallelFor guarantees this as long as distinct
 * indices write distinct locations, because the work decomposition
 * (chunking by @p grain) never depends on how many threads execute it.
 * parallelReduce evaluates one partial per chunk and combines them on
 * the calling thread in ascending chunk order, so floating-point
 * summation order is fixed; with grain == 1 the result is bit-identical
 * to the plain serial accumulation loop it replaces.
 *
 * Stochastic loops must not share one Rng across indices — pre-split
 * child streams with Rng::split() (util/rng.hh) before the parallel
 * region and give each index its own stream.
 *
 * Raw std::thread / std::async are forbidden outside this file
 * (enforced by tools/leca_lint.py rule `concurrency-primitive`); all
 * concurrency flows through this one audited primitive.
 *
 * Allocation note: parallelFor / parallelReduce / runChunks take the
 * loop body as a leca::FunctionRef (util/function_ref.hh), not a
 * std::function — the callable is only invoked synchronously, so the
 * non-owning reference is safe and the hot path stays heap-free (a
 * std::function here allocated on every kernel call; asserted
 * allocation-free by the DenyAllocScope tests, DESIGN.md §11).
 */

#ifndef LECA_UTIL_PARALLEL_HH
#define LECA_UTIL_PARALLEL_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/function_ref.hh"

namespace leca {

/** Number of threads the global pool runs with (>= 1; 1 = serial). */
int threadCount();

/**
 * Reconfigure the global pool to @p threads workers (>= 1), overriding
 * LECA_THREADS. Joins the old workers first; not safe to call from
 * inside a parallel region. Intended for tests and harness flags.
 */
void setThreadCount(int threads);

namespace detail {

/**
 * Execute fn(chunk) for every chunk index in [0, chunk_count) on the
 * pool. Chunks are claimed dynamically but the mapping chunk -> work
 * is fixed by the caller, so scheduling cannot affect results. The
 * first exception thrown by any chunk is rethrown on the caller after
 * all chunks finish. Nested calls from inside a worker run serially.
 */
void runChunks(std::int64_t chunk_count,
               FunctionRef<void(std::int64_t)> fn);

/** Number of grain-sized chunks covering n iterations. */
inline std::int64_t
chunkCount(std::int64_t n, std::int64_t grain)
{
    return grain > 0 ? (n + grain - 1) / grain : 0;
}

} // namespace detail

/**
 * Run fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
 * at most @p grain iterations. The decomposition depends only on
 * @p grain — never on the thread count — so loops whose indices write
 * disjoint locations produce bit-identical results at every
 * LECA_THREADS setting. fn must not touch shared mutable state.
 */
void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 FunctionRef<void(std::int64_t, std::int64_t)> fn);

/**
 * Deterministic reduction: evaluates chunk(chunk_begin, chunk_end) -> T
 * for each grain-sized chunk of [begin, end) in parallel, then folds
 * the partials with combine(acc, partial) in ascending chunk order on
 * the calling thread. Because the chunk boundaries and the combination
 * order are fixed, the result is bit-identical for every thread count;
 * with grain == 1 it is additionally bit-identical to the serial loop
 *     for (i : [begin, end)) acc = combine(acc, chunk(i, i + 1));
 */
template <typename T, typename ChunkFn, typename CombineFn>
T
parallelReduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
               T init, const ChunkFn &chunk, const CombineFn &combine)
{
    const std::int64_t n = end - begin;
    if (n <= 0)
        return init;
    const std::int64_t chunks = detail::chunkCount(n, grain);
    std::vector<T> partials(static_cast<std::size_t>(chunks));
    detail::runChunks(chunks, [&](std::int64_t c) {
        const std::int64_t lo = begin + c * grain;
        const std::int64_t hi = lo + grain < end ? lo + grain : end;
        partials[static_cast<std::size_t>(c)] = chunk(lo, hi);
    });
    T acc = std::move(init);
    for (auto &partial : partials)
        acc = combine(std::move(acc), std::move(partial));
    return acc;
}

/**
 * Run @p fn once on the calling thread AND once on every pool worker,
 * with a barrier: no participant returns from fn's chunk until every
 * participant has finished fn. The barrier is what makes participation
 * deterministic — chunks are normally claimed dynamically, so an
 * ordinary parallelFor cannot guarantee that any particular worker ran
 * (a sleeping worker may wake only after the others drained the loop).
 *
 * Use this to pre-warm per-thread state before entering a region that
 * must not allocate: e.g. growing every worker's thread-local Arena to
 * a workload's high-water mark so that a worker which slept through
 * the warm-up iterations cannot heap-allocate (grow its cold arena)
 * when it claims its first chunk inside a DenyAllocScope region
 * (DESIGN.md §11, tier 3). Called from inside a parallel region or
 * with a single-thread pool, fn runs once on the caller only.
 *
 * fn must be safe to run concurrently on all threads. Exceptions still
 * release the barrier (no deadlock); the first one is rethrown on the
 * caller.
 */
void poolBarrier(FunctionRef<void()> fn);

/**
 * A single background task that overlaps with work on the calling
 * thread (the batch-prefetch primitive, see src/data/trainloop.hh).
 *
 * run(fn) launches fn on a dedicated thread; wait() joins it and
 * rethrows any exception fn raised. The task body is marked as being
 * inside a parallel region, so parallelFor calls it makes degrade to
 * serial execution instead of contending with the caller for the
 * global pool — the pool stays dedicated to the foreground compute.
 *
 * The join in wait()/the destructor is the only synchronization point:
 * results produced by fn must not be read before wait() returns.
 */
class AsyncTask
{
  public:
    AsyncTask() = default;
    ~AsyncTask(); //!< joins a pending task, discarding its exception

    AsyncTask(const AsyncTask &) = delete;
    AsyncTask &operator=(const AsyncTask &) = delete;

    /** Launch fn in the background. A task must not already be pending. */
    void run(std::function<void()> fn);

    /** True between run() and the matching wait(). */
    bool pending() const { return _running; }

    /** Join the task and rethrow the exception it raised, if any. */
    void wait();

  private:
    std::thread _thread;
    std::exception_ptr _error;
    bool _running = false;
};

/**
 * A long-running owned runtime thread (the serve-runtime primitive,
 * see src/serve/). Unlike AsyncTask, the body is NOT marked as a
 * parallel region: parallelFor calls it makes dispatch onto the global
 * pool through the normal one-task-at-a-time gate, so a service thread
 * (e.g. the batching dispatcher in leca::serve) gets full pool
 * parallelism for its compute.
 *
 * Ownership rules: the thread is always joined — by join() or by the
 * destructor — never detached. Holders are responsible for making the
 * body return (close a queue, set a stop flag) before destruction,
 * otherwise the join blocks. join() rethrows the first exception the
 * body raised; the destructor joins and discards it.
 */
class ServiceThread
{
  public:
    ServiceThread() = default;
    ~ServiceThread(); //!< joins a running thread, discarding its exception

    ServiceThread(const ServiceThread &) = delete;
    ServiceThread &operator=(const ServiceThread &) = delete;

    /** Launch fn. The thread must not already be running. */
    void start(std::function<void()> fn);

    /** True between start() and the matching join(). */
    bool running() const { return _running; }

    /** Join the thread and rethrow the exception it raised, if any. */
    void join();

  private:
    std::thread _thread;
    std::exception_ptr _error;
    bool _running = false;
};

} // namespace leca

#endif // LECA_UTIL_PARALLEL_HH
