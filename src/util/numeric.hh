/**
 * @file
 * Explicit float -> integer conversion helpers.
 *
 * A bare `static_cast<int>` on a floating value truncates toward zero
 * and is UB when the value is out of range — exactly the silent-error
 * class the hardware models must not contain. All narrowing in src/
 * goes through these helpers (enforced by tools/leca_lint.py), which
 * name the rounding mode and bound the argument in Debug builds.
 */

#ifndef LECA_UTIL_NUMERIC_HH
#define LECA_UTIL_NUMERIC_HH

#include <cmath>
#include <limits>

#include "util/check.hh"

namespace leca {

namespace detail {

template <typename F>
inline void
dcheckIntRange([[maybe_unused]] F value)
{
    LECA_DCHECK(value >= static_cast<F>(std::numeric_limits<int>::min())
                    && value <= static_cast<F>(
                                    std::numeric_limits<int>::max()),
                "value ", value, " out of int range");
}

} // namespace detail

/** Round-to-nearest (ties away from zero), then narrow to int. */
template <typename F>
inline int
roundToInt(F value)
{
    const F rounded = std::round(value);
    detail::dcheckIntRange(rounded);
    return static_cast<int>(rounded);
}

/** Round toward negative infinity, then narrow to int. */
template <typename F>
inline int
floorToInt(F value)
{
    const F floored = std::floor(value);
    detail::dcheckIntRange(floored);
    return static_cast<int>(floored);
}

/** Round toward positive infinity, then narrow to int. */
template <typename F>
inline int
ceilToInt(F value)
{
    const F ceiled = std::ceil(value);
    detail::dcheckIntRange(ceiled);
    return static_cast<int>(ceiled);
}

/** Truncate toward zero (the C++ default), made explicit. */
template <typename F>
inline int
truncToInt(F value)
{
    const F truncated = std::trunc(value);
    detail::dcheckIntRange(truncated);
    return static_cast<int>(truncated);
}

} // namespace leca

#endif // LECA_UTIL_NUMERIC_HH
