/**
 * @file
 * Clang thread-safety-analysis annotation macros (DESIGN.md §11).
 *
 * These wrap Clang's `-Wthread-safety` attributes so lock discipline is
 * proved at compile time instead of sampled at runtime: a field marked
 * LECA_GUARDED_BY(m) cannot be read or written without holding m, a
 * function marked LECA_REQUIRES(m) cannot be called without it, and the
 * CI static-analysis job promotes every violation to a build error.
 * Under GCC (and any compiler without the attributes) every macro
 * expands to nothing, so the annotations are zero-cost documentation
 * there and binding contracts under Clang.
 *
 * The annotations only attach to capability types. std::mutex in
 * libstdc++ is not annotated, so util/mutex.hh provides leca::Mutex /
 * leca::MutexLock / leca::UniqueLock — thin annotated wrappers that all
 * guarded code in this repository uses instead of the raw std types
 * (enforced by tools/leca_analyze.py check `unannotated-mutex`).
 *
 * How to annotate a new mutex-protected structure:
 *   1. Declare the lock as `leca::Mutex _mutex;`.
 *   2. Mark every field it protects `LECA_GUARDED_BY(_mutex)`.
 *   3. Take the lock with `MutexLock lock(_mutex);` (or UniqueLock for
 *      condition-variable waits, via lock.raw()).
 *   4. Mark private helpers that assume the lock is already held
 *      `LECA_REQUIRES(_mutex)` instead of re-locking.
 *   5. Write condition-variable waits as explicit while-loops in the
 *      annotated function body, not as predicate lambdas — the analysis
 *      does not propagate capabilities into lambdas.
 */

#ifndef LECA_UTIL_THREAD_ANNOTATIONS_HH
#define LECA_UTIL_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && (!defined(SWIG))
#define LECA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define LECA_THREAD_ANNOTATION_ATTRIBUTE(x) // no-op
#endif

/** Marks a class as a lockable capability ("mutex" names its kind). */
#define LECA_CAPABILITY(x) LECA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/** Marks an RAII class whose lifetime acquires/releases a capability. */
#define LECA_SCOPED_CAPABILITY LECA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/** Field access requires holding the named capability. */
#define LECA_GUARDED_BY(x) LECA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/** Pointee access requires holding the named capability. */
#define LECA_PT_GUARDED_BY(x) LECA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/** Caller must hold the capabilities (the function does not acquire). */
#define LECA_REQUIRES(...)                                                    \
    LECA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/** Function acquires the capabilities and holds them on return. */
#define LECA_ACQUIRE(...)                                                     \
    LECA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/** Function releases capabilities the caller held on entry. */
#define LECA_RELEASE(...)                                                     \
    LECA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/** Function acquires the capability only when returning @p ret. */
#define LECA_TRY_ACQUIRE(ret, ...)                                            \
    LECA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/** Caller must NOT hold the capabilities (deadlock prevention). */
#define LECA_EXCLUDES(...)                                                    \
    LECA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/** Declares that the function returns a reference to the capability. */
#define LECA_RETURN_CAPABILITY(x)                                             \
    LECA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/** Escape hatch: disables analysis inside one function. Every use must
 *  carry a comment explaining why the protocol is safe. */
#define LECA_NO_THREAD_SAFETY_ANALYSIS                                        \
    LECA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif // LECA_UTIL_THREAD_ANNOTATIONS_HH
