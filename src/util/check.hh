/**
 * @file
 * Runtime contracts for the simulator.
 *
 * The repository distinguishes two failure channels:
 *
 *  - LECA_CHECK   always-on precondition/postcondition validation on
 *                 load-bearing interfaces (shape agreement, config
 *                 ranges, codec round-trip invariants). Violations
 *                 throw leca::CheckError so tests can assert on them
 *                 and callers can recover from bad configurations.
 *  - LECA_DCHECK  debug-only invariants on hot paths (per-element
 *                 bounds checks). Compiles to nothing under NDEBUG so
 *                 the -O3 -march=native Release kernels are unchanged;
 *                 the condition and message stay type-checked in every
 *                 build.
 *
 * The older panic()-based LECA_ASSERT (util/logging.hh) remains for
 * "impossible" states where unwinding is meaningless (corrupt internal
 * caches). New validation code should prefer the macros here.
 */

#ifndef LECA_UTIL_CHECK_HH
#define LECA_UTIL_CHECK_HH

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace leca {

/**
 * Thrown by LECA_CHECK on contract violation. what() carries the
 * failed condition, file:line, and the formatted context message.
 */
class CheckError : public std::runtime_error
{
  public:
    CheckError(std::string condition, std::string file, int line,
               std::string message)
        : std::runtime_error(file + ":" + std::to_string(line)
                             + ": check '" + condition + "' failed"
                             + (message.empty() ? "" : ": " + message)),
          _condition(std::move(condition)), _file(std::move(file)),
          _line(line), _message(std::move(message))
    {
    }

    const std::string &condition() const { return _condition; }
    const std::string &file() const { return _file; }
    int line() const { return _line; }
    const std::string &message() const { return _message; }

  private:
    std::string _condition;
    std::string _file;
    int _line;
    std::string _message;
};

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
checkConcat(Args &&...args)
{
    std::ostringstream os;
    ((os << std::forward<Args>(args)), ...);
    return os.str();
}

/** Render a shape vector as "[n, c, h, w]" for check messages. */
inline std::string
formatShape(const std::vector<int> &shape)
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << shape[i];
    }
    os << ']';
    return os.str();
}

[[noreturn]] inline void
throwCheckError(const char *condition, const char *file, int line,
                std::string message)
{
    throw CheckError(condition, file, line, std::move(message));
}

} // namespace detail

/**
 * Always-on contract: throws leca::CheckError when @p cond is false.
 * Extra arguments are streamed into the error message.
 */
#define LECA_CHECK(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::leca::detail::throwCheckError(                                 \
                #cond, __FILE__, __LINE__,                                   \
                ::leca::detail::checkConcat(__VA_ARGS__));                   \
        }                                                                    \
    } while (false)

/**
 * Debug-only contract for hot paths. Identical to LECA_CHECK in Debug
 * builds; under NDEBUG the condition sits behind `if (false)` so the
 * optimizer removes it entirely while the expression (and any variables
 * it names) stays type-checked and odr-used.
 */
#ifdef NDEBUG
#define LECA_DCHECK(cond, ...)                                               \
    do {                                                                     \
        if (false) {                                                         \
            LECA_CHECK(cond, ##__VA_ARGS__);                                 \
        }                                                                    \
    } while (false)
#else
#define LECA_DCHECK(cond, ...) LECA_CHECK(cond, ##__VA_ARGS__)
#endif

/** Check that a Tensor-like object has exactly the expected shape.
 *  Binds the expected shape by const reference: an lvalue vector
 *  argument is compared in place (no per-call copy on hot paths such
 *  as Server::submit), while a brace temporary is lifetime-extended
 *  for the duration of the check. */
#define LECA_CHECK_SHAPE(tensor, ...)                                        \
    do {                                                                     \
        const std::vector<int> &leca_check_expected_ = __VA_ARGS__;          \
        if ((tensor).shape() != leca_check_expected_) {                      \
            ::leca::detail::throwCheckError(                                 \
                #tensor " has expected shape", __FILE__, __LINE__,           \
                ::leca::detail::checkConcat(                                 \
                    "got ", ::leca::detail::formatShape((tensor).shape()),   \
                    ", expected ",                                           \
                    ::leca::detail::formatShape(leca_check_expected_)));     \
        }                                                                    \
    } while (false)

/** Check that two Tensor-like objects agree in shape. */
#define LECA_CHECK_SAME_SHAPE(a, b)                                          \
    do {                                                                     \
        if ((a).shape() != (b).shape()) {                                    \
            ::leca::detail::throwCheckError(                                 \
                #a " same shape as " #b, __FILE__, __LINE__,                 \
                ::leca::detail::checkConcat(                                 \
                    #a " is ", ::leca::detail::formatShape((a).shape()),     \
                    ", " #b " is ",                                          \
                    ::leca::detail::formatShape((b).shape())));              \
        }                                                                    \
    } while (false)

} // namespace leca

#endif // LECA_UTIL_CHECK_HH
