/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid argument); exits with code 1.
 * panic()  - an internal invariant was violated (a bug); aborts.
 * warn()   - something works but not as well as it should.
 * inform() - normal operating status for the user.
 */

#ifndef LECA_UTIL_LOGGING_HH
#define LECA_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

namespace leca {

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::cerr << "info: " << detail::concat(std::forward<Args>(args)...)
              << "\n";
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::cerr << "warn: " << detail::concat(std::forward<Args>(args)...)
              << "\n";
}

/** Terminate with exit(1) due to a user-caused error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::cerr << "fatal: " << detail::concat(std::forward<Args>(args)...)
              << "\n";
    std::exit(1);
}

/** Abort due to an internal bug (invariant violation). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::cerr << "panic: " << detail::concat(std::forward<Args>(args)...)
              << "\n";
    std::abort();
}

/** panic() unless a condition holds. */
#define LECA_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::leca::panic("assertion '", #cond, "' failed at ", __FILE__,    \
                          ":", __LINE__, " ", ##__VA_ARGS__);                \
        }                                                                    \
    } while (0)

} // namespace leca

#endif // LECA_UTIL_LOGGING_HH
