#include "table.hh"

#include "util/check.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace leca {

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    LECA_CHECK(cells.size() == _headers.size(),
                "row width ", cells.size(), " != header width ",
                _headers.size());
    _rows.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::pct(double value, int precision)
{
    return num(value, precision) + "%";
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };

    emit_row(_headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : _rows)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit_row(_headers);
    for (const auto &row : _rows)
        emit_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace leca
