/**
 * @file
 * Deterministic pseudo-random number generation for every stochastic
 * component in the repository (dataset synthesis, weight init, circuit
 * mismatch sampling, sensor noise).
 *
 * All benches and tests seed an Rng explicitly, so every experiment is
 * reproducible bit-for-bit across runs.
 */

#ifndef LECA_UTIL_RNG_HH
#define LECA_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace leca {

/**
 * xoshiro256** generator seeded through SplitMix64.
 *
 * Small, fast, and good enough statistically for simulation noise; we
 * deliberately avoid std::mt19937 so that streams are identical across
 * standard-library implementations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal via Box-Muller (cached second value). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Poisson sample with the given mean.
     *
     * Uses Knuth's method for small lambda and a Gaussian approximation
     * for large lambda (> 64), which is accurate for photon shot noise
     * at normal illumination levels.
     */
    long poisson(double lambda);

    /** Derive an independent child stream (e.g. one per image). */
    Rng fork();

    /**
     * Pre-split @p count independent child streams from @p parent, one
     * per loop index, advancing @p parent once per child. Call this
     * BEFORE a parallel region and hand streams[i] to index i: the
     * draw sequence of each child then depends only on its index, never
     * on thread scheduling (see util/parallel.hh determinism policy).
     */
    static std::vector<Rng> split(Rng &parent, std::size_t count);

  private:
    std::array<std::uint64_t, 4> _state;
    double _cachedGaussian = 0.0;
    bool _hasCachedGaussian = false;
};

} // namespace leca

#endif // LECA_UTIL_RNG_HH
