/**
 * @file
 * Thread-local bump-allocated scratch arena for kernel workspace.
 *
 * The packed GEMM / im2col kernels (tensor/kernels.cc) need short-lived
 * scratch buffers (packed panels, column matrices) on every call. Heap
 * allocating those per image per conv call dominated steady-state
 * allocation traffic, so all kernel scratch instead comes from one
 * arena per thread: a bump pointer over a few large blocks that are
 * retained across calls. After a warm-up pass the arena reaches its
 * high-water capacity and every subsequent top-level op allocates
 * nothing from the heap (asserted by tests/test_kernels.cc via the
 * block-allocation counter).
 *
 * Lifetime rules:
 *   - Every top-level use opens an Arena::Scope (RAII). alloc() bumps;
 *     the Scope destructor rewinds to the saved mark, so nested scopes
 *     (e.g. a GEMM inside a conv) stack naturally.
 *   - Pointers returned by alloc() are valid until their enclosing
 *     Scope is destroyed; blocks are never moved or freed inside a
 *     scope.
 *   - When the outermost Scope on a thread closes and the arena had
 *     fragmented into multiple blocks, the blocks are consolidated
 *     into one block of the combined capacity (one final allocation),
 *     so steady state is a single block and zero heap traffic.
 *   - Arenas are thread-local: pool workers each own one, so parallel
 *     kernel chunks pack into private scratch with no sharing.
 */

#ifndef LECA_UTIL_ARENA_HH
#define LECA_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace leca {

/** Bump allocator over retained float blocks; see file comment. */
class Arena
{
  public:
    /** The calling thread's arena. */
    static Arena &local();

    /**
     * Bump-allocate @p n floats (rounded up to a 16-float boundary;
     * the block is grown only when capacity runs out). The memory is
     * uninitialised. Valid until the enclosing Scope closes.
     */
    float *alloc(std::size_t n);

    /**
     * Byte-typed view of alloc() for non-float kernel scratch (int8
     * quantized codes): bumps ceil(bytes/4) floats, so alignment and
     * lifetime rules are identical.
     */
    void *allocBytes(std::size_t bytes)
    {
        return alloc((bytes + sizeof(float) - 1) / sizeof(float));
    }

    /** Floats currently handed out (rounded sizes). */
    std::size_t liveFloats() const { return _live; }

    /** Largest liveFloats() ever observed on this arena. */
    std::size_t highWaterFloats() const { return _highWater; }

    /** Largest highWaterFloats() ever observed on ANY thread's arena
     *  (process-wide monotone max) — the capacity warmPoolArenas()
     *  grows cold arenas to. */
    static std::size_t maxHighWaterFloats();

    /** Total float capacity across this arena's blocks. */
    std::size_t capacityFloats() const;

    /**
     * Process-wide count of backing-block heap allocations across all
     * arenas. Flat across repeated identical workloads once warm —
     * the hook tests/test_kernels.cc uses to prove steady-state
     * conv/GEMM calls are allocation-free.
     */
    static std::uint64_t totalBlockAllocs();

    /**
     * RAII mark/rewind over the calling thread's arena. Opened by
     * every top-level kernel entry point; cheap enough to open
     * unconditionally (nested scopes just save and restore a mark).
     */
    class Scope
    {
      public:
        Scope();
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Arena &_arena;
        std::size_t _savedBlock;
        std::size_t _savedOffset;
        std::size_t _savedLive;
    };

  private:
    Arena() = default;

    /** Make room for @p n floats: next retained block or a new one. */
    void grow(std::size_t n);

    /** Merge multiple blocks into one; only legal when nothing is live. */
    void consolidate();

    std::vector<std::vector<float>> _blocks;
    std::size_t _block = 0;     //!< index of the block being bumped
    std::size_t _offset = 0;    //!< bump offset within _blocks[_block]
    std::size_t _live = 0;      //!< floats handed out across blocks
    std::size_t _highWater = 0; //!< max of _live
    int _scopeDepth = 0;        //!< open Scope count (consolidation gate)
};

/**
 * Grow the calling thread's arena AND every pool worker's arena to
 * Arena::maxHighWaterFloats(), via poolBarrier (util/parallel.hh).
 *
 * Pool chunks are claimed dynamically, so warm-up iterations alone
 * cannot guarantee that every worker's thread-local arena reached the
 * workload's high-water mark — a worker that slept through the warm-up
 * would heap-allocate (grow its cold arena) on its first claimed chunk.
 * Call this after the warm-up, before entering a DenyAllocScope region
 * or asserting Arena::totalBlockAllocs() stability, to make the warm
 * steady state scheduling-independent. No-op when nothing has ever
 * been allocated.
 */
void warmPoolArenas();

} // namespace leca

#endif // LECA_UTIL_ARENA_HH
