#include "alloc_guard.hh"

#ifdef LECA_ALLOC_GUARD

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

// This translation unit replaces the global allocation functions, so it
// is the one place in src/ allowed to call malloc/free directly (lint
// rule `raw-allocation` exempts it): the replacements must not recurse
// into operator new themselves.

namespace leca {
namespace alloc_detail {

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_violations{0};
std::atomic<int> g_denyDepth{0};

/** Per-thread AllowAllocScope nesting depth. Plain int with constant
 *  initialization so touching it from operator new is safe at any
 *  point of the process lifetime. */
thread_local int t_allowDepth = 0;

bool
fatalOnViolation()
{
    // Latched on first use; getenv is async-signal-unsafe but operator
    // new already is, and the latch avoids re-reading per allocation.
    static const bool fatal = [] {
        const char *env = std::getenv("LECA_ALLOC_GUARD_FATAL");
        return env != nullptr && env[0] == '1';
    }();
    return fatal;
}

void
recordAllocation(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (g_denyDepth.load(std::memory_order_relaxed) > 0
        && t_allowDepth == 0) {
        g_violations.fetch_add(1, std::memory_order_relaxed);
        if (fatalOnViolation()) {
            std::fprintf(stderr,
                         "leca: heap allocation of %zu bytes inside "
                         "DenyAllocScope (LECA_ALLOC_GUARD_FATAL=1)\n",
                         size);
            std::abort();
        }
    }
}

void *
allocateOrHandle(std::size_t size)
{
    for (;;) {
        void *ptr = std::malloc(size == 0 ? 1 : size);
        if (ptr != nullptr)
            return ptr;
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr)
            return nullptr;
        handler();
    }
}

void *
allocateAlignedOrHandle(std::size_t size, std::size_t alignment)
{
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t rounded =
        (size + alignment - 1) / alignment * alignment;
    for (;;) {
        void *ptr = std::aligned_alloc(alignment,
                                       rounded == 0 ? alignment : rounded);
        if (ptr != nullptr)
            return ptr;
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr)
            return nullptr;
        handler();
    }
}

} // namespace
} // namespace alloc_detail

bool
allocGuardEnabled()
{
    return true;
}

std::uint64_t
totalHeapAllocs()
{
    return alloc_detail::g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t
totalDenyViolations()
{
    return alloc_detail::g_violations.load(std::memory_order_relaxed);
}

DenyAllocScope::DenyAllocScope() : _violationsAtOpen(totalDenyViolations())
{
    alloc_detail::g_denyDepth.fetch_add(1, std::memory_order_relaxed);
}

DenyAllocScope::~DenyAllocScope()
{
    alloc_detail::g_denyDepth.fetch_sub(1, std::memory_order_relaxed);
}

bool
DenyAllocScope::active()
{
    return alloc_detail::g_denyDepth.load(std::memory_order_relaxed) > 0;
}

std::uint64_t
DenyAllocScope::violations() const
{
    return totalDenyViolations() - _violationsAtOpen;
}

AllowAllocScope::AllowAllocScope() { ++alloc_detail::t_allowDepth; }

AllowAllocScope::~AllowAllocScope() { --alloc_detail::t_allowDepth; }

} // namespace leca

// ---- Global allocation-function replacements ----------------------------

void *
operator new(std::size_t size)
{
    leca::alloc_detail::recordAllocation(size);
    void *ptr = leca::alloc_detail::allocateOrHandle(size);
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size)
{
    leca::alloc_detail::recordAllocation(size);
    void *ptr = leca::alloc_detail::allocateOrHandle(size);
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    leca::alloc_detail::recordAllocation(size);
    return leca::alloc_detail::allocateOrHandle(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    leca::alloc_detail::recordAllocation(size);
    return leca::alloc_detail::allocateOrHandle(size);
}

void *
operator new(std::size_t size, std::align_val_t alignment)
{
    leca::alloc_detail::recordAllocation(size);
    void *ptr = leca::alloc_detail::allocateAlignedOrHandle(
        size, static_cast<std::size_t>(alignment));
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size, std::align_val_t alignment)
{
    leca::alloc_detail::recordAllocation(size);
    void *ptr = leca::alloc_detail::allocateAlignedOrHandle(
        size, static_cast<std::size_t>(alignment));
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new(std::size_t size, std::align_val_t alignment,
             const std::nothrow_t &) noexcept
{
    leca::alloc_detail::recordAllocation(size);
    return leca::alloc_detail::allocateAlignedOrHandle(
        size, static_cast<std::size_t>(alignment));
}

void *
operator new[](std::size_t size, std::align_val_t alignment,
               const std::nothrow_t &) noexcept
{
    leca::alloc_detail::recordAllocation(size);
    return leca::alloc_detail::allocateAlignedOrHandle(
        size, static_cast<std::size_t>(alignment));
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t,
                  const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

#else // !LECA_ALLOC_GUARD

namespace leca {

bool
allocGuardEnabled()
{
    return false;
}

std::uint64_t
totalHeapAllocs()
{
    return 0;
}

std::uint64_t
totalDenyViolations()
{
    return 0;
}

DenyAllocScope::DenyAllocScope() : _violationsAtOpen(0) {}
DenyAllocScope::~DenyAllocScope() = default;

bool
DenyAllocScope::active()
{
    return false;
}

std::uint64_t
DenyAllocScope::violations() const
{
    return 0;
}

AllowAllocScope::AllowAllocScope() = default;
AllowAllocScope::~AllowAllocScope() = default;

} // namespace leca

#endif // LECA_ALLOC_GUARD
