/**
 * @file
 * Plain-text table and CSV emission used by the benchmark harnesses to
 * print the rows/series of each reproduced paper table and figure.
 */

#ifndef LECA_UTIL_TABLE_HH
#define LECA_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace leca {

/**
 * Accumulates rows of strings and renders them as an aligned text table
 * or as CSV. Cell helpers format doubles with a fixed precision.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision fraction digits. */
    static std::string num(double value, int precision = 2);

    /** Format a double as a percentage string, e.g. "12.34%". */
    static std::string pct(double value, int precision = 2);

    /** Render with aligned columns and a header rule. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return _rows.size(); }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Print a section banner used between bench sub-experiments. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace leca

#endif // LECA_UTIL_TABLE_HH
