/**
 * @file
 * Debug-only heap-allocation interposer and RAII deny scopes
 * (DESIGN.md §11, Tier 3).
 *
 * The repo's "warm steady state allocates nothing" claims (blocked
 * GEMM scratch, the trainloop step, the serve dispatch path) used to
 * be asserted indirectly through Arena block counters, which only see
 * arena growth — a stray std::vector or std::function capture on the
 * hot path went unnoticed. When built with LECA_ALLOC_GUARD (the
 * default outside sanitizer builds; see the option in the top-level
 * CMakeLists), alloc_guard.cc replaces the global operator new/delete
 * family with counting hooks so those claims become hard assertions:
 *
 *   DenyAllocScope deny;           // process-wide: EVERY thread's
 *   hotPath();                     // operator new now counts as a
 *   EXPECT_EQ(deny.violations(), 0);  // violation
 *
 * Violations are counted, not fatal, so a test failure reports how
 * many allocations leaked into the scope instead of aborting the
 * whole suite; set LECA_ALLOC_GUARD_FATAL=1 in the environment to
 * abort at the first violation with the size in the message (useful
 * under a debugger: break in leca::alloc_detail::onViolation).
 *
 * AllowAllocScope re-permits allocation on the *current thread* inside
 * an active deny scope. The serve dispatcher wraps its backend
 * invocation in one: the serve layer itself is allocation-free and the
 * guard proves it, while the model backend owns its own allocation
 * budget (a quantized backend may legitimately allocate on first use).
 *
 * Everything compiles to trivial no-ops when LECA_ALLOC_GUARD is off;
 * tests gate their assertions on allocGuardEnabled().
 */

#ifndef LECA_UTIL_ALLOC_GUARD_HH
#define LECA_UTIL_ALLOC_GUARD_HH

#include <cstdint>

namespace leca {

/** True when the counting operator-new hooks are compiled in. */
bool allocGuardEnabled();

/** Process-wide heap allocations observed since start (0 when the
 *  guard is compiled out). Monotonic; taken with relaxed atomics. */
std::uint64_t totalHeapAllocs();

/** Process-wide count of allocations that happened inside an active
 *  DenyAllocScope (and outside an AllowAllocScope). */
std::uint64_t totalDenyViolations();

/**
 * RAII scope during which heap allocation on ANY thread is a
 * violation. Process-wide by design: the hot paths under test fan out
 * across the util/parallel pool and the serve dispatcher thread, so a
 * thread-local deny would miss exactly the allocations we care about.
 * Scopes nest; the deny is active while at least one is open.
 */
class DenyAllocScope
{
  public:
    DenyAllocScope();
    ~DenyAllocScope();
    DenyAllocScope(const DenyAllocScope &) = delete;
    DenyAllocScope &operator=(const DenyAllocScope &) = delete;

    /** True while any DenyAllocScope is open (false when compiled out). */
    static bool active();

    /** Violations recorded since this scope opened. */
    std::uint64_t violations() const;

  private:
    std::uint64_t _violationsAtOpen;
};

/**
 * RAII scope re-permitting allocation on the current thread inside a
 * DenyAllocScope (e.g. around a backend whose allocations are its own
 * business). Nests; no effect when no deny scope is active.
 */
class AllowAllocScope
{
  public:
    AllowAllocScope();
    ~AllowAllocScope();
    AllowAllocScope(const AllowAllocScope &) = delete;
    AllowAllocScope &operator=(const AllowAllocScope &) = delete;
};

} // namespace leca

#endif // LECA_UTIL_ALLOC_GUARD_HH
