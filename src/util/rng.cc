#include "rng.hh"

#include <cmath>

namespace leca {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : _state)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
}

double
Rng::gaussian()
{
    if (_hasCachedGaussian) {
        _hasCachedGaussian = false;
        return _cachedGaussian;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    _cachedGaussian = r * std::sin(theta);
    _hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

long
Rng::poisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    if (lambda > 64.0) {
        const double g = gaussian(lambda, std::sqrt(lambda));
        return g < 0.0 ? 0 : static_cast<long>(g + 0.5);
    }
    const double limit = std::exp(-lambda);
    long k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= uniform();
    } while (p > limit);
    return k - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

std::vector<Rng>
Rng::split(Rng &parent, std::size_t count)
{
    std::vector<Rng> streams;
    streams.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        streams.push_back(parent.fork());
    return streams;
}

} // namespace leca
