/**
 * @file
 * Annotated mutex primitives for Clang thread-safety analysis.
 *
 * libstdc++'s std::mutex / std::lock_guard / std::unique_lock carry no
 * capability attributes, so code locking them is invisible to
 * `-Wthread-safety`. These wrappers are the annotated equivalents every
 * mutex-protected structure in the repository uses (queue ring,
 * dispatcher state, ticket completion slots, pool internals):
 *
 *   leca::Mutex       an annotated std::mutex (a CAPABILITY)
 *   leca::MutexLock   scoped lock, the std::lock_guard replacement
 *   leca::UniqueLock  scoped lock exposing the underlying
 *                     std::unique_lock for condition_variable waits
 *
 * Zero overhead: every method is an inline forward to the std type.
 * Condition-variable waits go through UniqueLock::raw(); write the wait
 * as an explicit `while (!predicate) cv.wait(lock.raw());` loop so the
 * predicate reads of guarded fields sit in the annotated function body
 * (the analysis does not propagate capabilities into wait-predicate
 * lambdas).
 */

#ifndef LECA_UTIL_MUTEX_HH
#define LECA_UTIL_MUTEX_HH

#include <mutex>

#include "util/thread_annotations.hh"

namespace leca {

/** std::mutex with capability annotations; see file comment. */
class LECA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() LECA_ACQUIRE() { _mutex.lock(); }
    void unlock() LECA_RELEASE() { _mutex.unlock(); }
    bool try_lock() LECA_TRY_ACQUIRE(true) { return _mutex.try_lock(); }

    /** The wrapped std::mutex (for std lock adapters; prefer the
     *  annotated MutexLock / UniqueLock wrappers below). */
    std::mutex &native() LECA_RETURN_CAPABILITY(this) { return _mutex; }

  private:
    std::mutex _mutex;
};

/** RAII lock for the common hold-to-end-of-scope case. */
class LECA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) LECA_ACQUIRE(mutex)
        : _lock(mutex.native())
    {
    }
    ~MutexLock() LECA_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    std::lock_guard<std::mutex> _lock;
};

/** RAII lock whose underlying std::unique_lock can be handed to
 *  condition_variable::wait via raw(). The capability is treated as
 *  held for the whole scope, which matches the wait postcondition (the
 *  lock is reacquired before wait returns). */
class LECA_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mutex) LECA_ACQUIRE(mutex)
        : _lock(mutex.native())
    {
    }
    ~UniqueLock() LECA_RELEASE() {}

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    /** The std lock, for condition_variable::wait / wait_until only. */
    std::unique_lock<std::mutex> &raw() { return _lock; }

  private:
    std::unique_lock<std::mutex> _lock;
};

} // namespace leca

#endif // LECA_UTIL_MUTEX_HH
