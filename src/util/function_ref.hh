/**
 * @file
 * Non-owning, non-allocating callable reference.
 *
 * std::function type-erases by value: constructing one from a lambda
 * whose captures exceed the small-buffer budget (16 bytes in libstdc++)
 * heap-allocates — which put one hidden allocation on *every*
 * parallelFor / parallelReduce call and therefore inside every hot
 * kernel (found by tools/leca_analyze.py check `hidden-alloc` and the
 * DenyAllocScope guards; see DESIGN.md §11). FunctionRef erases by
 * reference instead: it stores one void* to the callable and one thunk
 * pointer, so construction and invocation never touch the heap.
 *
 * Lifetime contract: a FunctionRef does not extend the callable's
 * lifetime. It is only safe where the callable provably outlives every
 * invocation — synchronous APIs that finish before returning, like
 * leca::parallelFor, leca::parallelReduce and the pool's runChunks.
 * Anything that stores a callable beyond the call (AsyncTask,
 * ServiceThread) keeps taking std::function by value.
 */

#ifndef LECA_UTIL_FUNCTION_REF_HH
#define LECA_UTIL_FUNCTION_REF_HH

#include <type_traits>
#include <utility>

namespace leca {

template <typename Signature>
class FunctionRef;

/**
 * Lightweight view of a callable with signature R(Args...).
 * Trivially copyable; two words; never allocates.
 */
template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    FunctionRef() = default;

    /** Bind any callable lvalue or temporary. The referenced callable
     *  must outlive every call through this FunctionRef (safe for the
     *  synchronous parallel primitives; see file comment). */
    template <typename Fn,
              typename = std::enable_if_t<!std::is_same_v<
                  std::remove_cv_t<std::remove_reference_t<Fn>>,
                  FunctionRef>>>
    FunctionRef(Fn &&fn) // NOLINT(bugprone-forwarding-reference-overload)
        : _callable(const_cast<void *>(static_cast<const void *>(
              std::addressof(fn)))),
          _invoke(&invokeImpl<std::remove_reference_t<Fn>>)
    {
    }

    /** True when bound to a callable. */
    explicit operator bool() const { return _invoke != nullptr; }

    R
    operator()(Args... args) const
    {
        return _invoke(_callable, std::forward<Args>(args)...);
    }

  private:
    template <typename Fn>
    static R
    invokeImpl(void *callable, Args... args)
    {
        return (*static_cast<Fn *>(callable))(std::forward<Args>(args)...);
    }

    void *_callable = nullptr;
    R (*_invoke)(void *, Args...) = nullptr;
};

} // namespace leca

#endif // LECA_UTIL_FUNCTION_REF_HH
