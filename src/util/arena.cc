#include "arena.hh"

#include <algorithm>
#include <atomic>

#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

namespace {

/** Smallest block ever allocated: 64 K floats = 256 KiB. */
constexpr std::size_t kMinBlockFloats = std::size_t{1} << 16;

/** Bump granularity: 16 floats = one 64-byte cache line. */
constexpr std::size_t kAlignFloats = 16;

std::atomic<std::uint64_t> g_blockAllocs{0};

/** Monotone max of every arena's high-water mark; only written when a
 *  thread sets a new personal high-water, so steady state never
 *  touches it. */
std::atomic<std::size_t> g_maxHighWater{0};

std::size_t
roundUpAligned(std::size_t n)
{
    return (n + kAlignFloats - 1) & ~(kAlignFloats - 1);
}

/**
 * Floats to skip from a block's base so the first allocation lands on
 * a 64-byte boundary (vector storage only guarantees malloc
 * alignment). All sizes are 16-float multiples, so alignment is then
 * preserved for every subsequent bump.
 */
std::size_t
basePadFloats(const std::vector<float> &block)
{
    constexpr std::size_t bytes = kAlignFloats * sizeof(float);
    const auto addr = reinterpret_cast<std::uintptr_t>(block.data());
    return ((bytes - addr % bytes) % bytes) / sizeof(float);
}

} // namespace

Arena &
Arena::local()
{
    static thread_local Arena arena;
    return arena;
}

float *
Arena::alloc(std::size_t n)
{
    n = roundUpAligned(std::max<std::size_t>(n, kAlignFloats));
    if (_blocks.empty())
        grow(n);
    std::size_t start = std::max(_offset, basePadFloats(_blocks[_block]));
    if (start + n > _blocks[_block].size()) {
        grow(n);
        start = std::max(_offset, basePadFloats(_blocks[_block]));
    }
    float *p = _blocks[_block].data() + start;
    _offset = start + n;
    _live += n;
    if (_live > _highWater) {
        _highWater = _live;
        std::size_t cur = g_maxHighWater.load(std::memory_order_relaxed);
        while (cur < _highWater
               && !g_maxHighWater.compare_exchange_weak(
                   cur, _highWater, std::memory_order_relaxed)) {
        }
    }
    return p;
}

// leca-analyze: cold — the one sanctioned growth path; warm steady
// state never reaches it (asserted by the totalBlockAllocs tests)
void
Arena::grow(std::size_t n)
{
    // Reuse the next retained block when it is big enough; otherwise
    // append a new block at least as large as everything allocated so
    // far, so capacity doubles and the block count stays logarithmic.
    // kAlignFloats of headroom covers the base-alignment pad.
    if (!_blocks.empty() && _block + 1 < _blocks.size()
        && _blocks[_block + 1].size() >= n + kAlignFloats) {
        ++_block;
        _offset = 0;
        return;
    }
    const std::size_t size =
        std::max({n + kAlignFloats, kMinBlockFloats, capacityFloats()});
    _blocks.emplace_back(size);
    g_blockAllocs.fetch_add(1, std::memory_order_relaxed);
    _block = _blocks.size() - 1;
    _offset = 0;
}

void
Arena::consolidate()
{
    LECA_CHECK(_live == 0, "arena consolidation with ", _live,
               " live floats");
    if (_blocks.size() <= 1)
        return;
    const std::size_t total = capacityFloats();
    _blocks.clear();
    _blocks.emplace_back(total);
    g_blockAllocs.fetch_add(1, std::memory_order_relaxed);
    _block = 0;
    _offset = 0;
}

std::size_t
Arena::capacityFloats() const
{
    std::size_t total = 0;
    for (const auto &block : _blocks)
        total += block.size();
    return total;
}

std::uint64_t
Arena::totalBlockAllocs()
{
    return g_blockAllocs.load(std::memory_order_relaxed);
}

std::size_t
Arena::maxHighWaterFloats()
{
    return g_maxHighWater.load(std::memory_order_relaxed);
}

// leca-analyze: cold — deliberate pre-warming growth (see header)
void
warmPoolArenas()
{
    const std::size_t target = Arena::maxHighWaterFloats();
    if (target == 0)
        return;
    poolBarrier([target] {
        Arena::Scope scope;
        (void)Arena::local().alloc(target);
    });
}

Arena::Scope::Scope()
    : _arena(Arena::local()), _savedBlock(_arena._block),
      _savedOffset(_arena._offset), _savedLive(_arena._live)
{
    ++_arena._scopeDepth;
}

Arena::Scope::~Scope()
{
    _arena._block = _savedBlock;
    _arena._offset = _savedOffset;
    _arena._live = _savedLive;
    if (--_arena._scopeDepth == 0 && _arena._live == 0)
        _arena.consolidate();
}

} // namespace leca
