#include "learned_codec.hh"

#include <algorithm>

#include "data/trainloop.hh"
#include "nn/activation.hh"
#include "nn/conv.hh"
#include "nn/conv_transpose.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "nn/quantize.hh"
#include "util/check.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {

LearnedCodec::LearnedCodec(int latent_channels, std::uint64_t seed)
    : _latentChannels(latent_channels),
      _encoder(std::make_unique<Sequential>()),
      _decoder(std::make_unique<Sequential>())
{
    LECA_CHECK(latent_channels >= 1, "need at least one latent channel");
    Rng rng(seed);
    // Two-stage strided encoder (total stride 4) — already far more
    // computation than a CIS column circuit could host.
    _encoder->emplace<Conv2d>(3, 24, 3, 2, 1, true, rng);
    _encoder->emplace<Relu>();
    _encoder->emplace<Conv2d>(24, latent_channels, 3, 2, 1, true, rng);
    _encoder->emplace<HardClamp>(-4.0f, 4.0f);

    _decoder->emplace<ConvTranspose2d>(latent_channels, 32, 2, 2, true,
                                       rng);
    _decoder->emplace<Relu>();
    _decoder->emplace<Conv2d>(32, 32, 3, 1, 1, true, rng);
    _decoder->emplace<Relu>();
    _decoder->emplace<ConvTranspose2d>(32, 24, 2, 2, true, rng);
    _decoder->emplace<Relu>();
    _decoder->emplace<Conv2d>(24, 3, 3, 1, 1, true, rng);
}

LearnedCodec::~LearnedCodec() = default;

double
LearnedCodec::compressionRatio() const
{
    // Input: 4x4x3 pixels at 8 bits per latent element; latent:
    // latentChannels elements at 8 bits.
    return 4.0 * 4.0 * 3.0 / static_cast<double>(_latentChannels);
}

Tensor
LearnedCodec::encodeQuantized(const Tensor &batch, Mode mode)
{
    Tensor latent = _encoder->forward(batch, mode);
    // 8-bit uniform quantization of the clamped latent.
    parallelFor(0, static_cast<std::int64_t>(latent.numel()), 4096,
                [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        latent[static_cast<std::size_t>(i)] = quantizeUniform(
                            latent[static_cast<std::size_t>(i)], -4.0f, 4.0f,
                            256);
                });
    return latent;
}

Tensor
LearnedCodec::processImpl(const Tensor &batch)
{
    LECA_CHECK(_trained,
                "LearnedCodec::process before train() — the learned "
                "baseline must be fitted first");
    const Tensor latent = encodeQuantized(batch, Mode::Eval);
    Tensor out = _decoder->forward(latent, Mode::Eval);
    parallelFor(0, static_cast<std::int64_t>(out.numel()), 4096,
                [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        out[static_cast<std::size_t>(i)] = std::clamp(
                            out[static_cast<std::size_t>(i)], 0.0f, 1.0f);
                });
    return out;
}

void
LearnedCodec::train(const Dataset &data, int epochs, double learning_rate,
                    int batch_size)
{
    std::vector<Param *> params = _encoder->params();
    for (Param *p : _decoder->params())
        params.push_back(p);
    Adam adam(params, learning_rate);
    MseLoss loss;

    const int n = data.count();
    for (int epoch = 0; epoch < epochs; ++epoch) {
        for (int begin = 0; begin < n; begin += batch_size) {
            const int count = std::min(batch_size, n - begin);
            const Dataset batch = sliceDataset(data, begin, count);
            adam.zeroGrad();
            // The 8-bit latent quantizer is benign enough to train
            // straight through (256 levels).
            const Tensor latent =
                _encoder->forward(batch.images, Mode::Train);
            const Tensor recon = _decoder->forward(latent, Mode::Train);
            loss.forward(recon, batch.images);
            const Tensor d_latent = _decoder->backward(loss.backward());
            _encoder->backward(d_latent);
            adam.step();
        }
    }
    _trained = true;
}

Tensor
LearnedCodec::processAtLatentLevels(const Tensor &batch, int levels)
{
    LECA_CHECK(_trained, "processAtLatentLevels before train()");
    Tensor latent = _encoder->forward(batch, Mode::Eval);
    for (std::size_t i = 0; i < latent.numel(); ++i)
        latent[i] = quantizeUniform(latent[i], -4.0f, 4.0f, levels);
    Tensor out = _decoder->forward(latent, Mode::Eval);
    for (std::size_t i = 0; i < out.numel(); ++i)
        out[i] = std::clamp(out[i], 0.0f, 1.0f);
    return out;
}

double
LearnedCodec::reconstructionMse(const Dataset &data)
{
    LECA_CHECK(_trained, "reconstructionMse before train()");
    const Tensor recon = process(data.images);
    double acc = 0.0;
    for (std::size_t i = 0; i < recon.numel(); ++i) {
        const double d =
            static_cast<double>(recon[i]) - data.images[i];
        acc += d * d;
    }
    return acc / static_cast<double>(recon.numel());
}

} // namespace leca
