/**
 * @file
 * Learned digital image codec — the "Learned [1,13,59,89]" row of
 * Table 1: an autoencoder trained for reconstruction quality in the
 * digital domain. Unlike LeCA it is task-agnostic (MSE objective),
 * runs after full 8-bit digitization, and needs a multi-layer encoder
 * network — exactly the contrast the paper draws (Sec. 7, "Learned
 * compression": computation-intensive encoders infeasible inside a
 * CIS).
 */

#ifndef LECA_COMPRESSION_LEARNED_CODEC_HH
#define LECA_COMPRESSION_LEARNED_CODEC_HH

#include <memory>

#include "compression/method.hh"
#include "data/dataset.hh"
#include "nn/sequential.hh"

namespace leca {

/**
 * Convolutional autoencoder codec: a strided encoder produces a
 * latent feature map that is uniformly quantized to 8 bits, and a
 * transposed-convolution decoder reconstructs the image. The
 * compression ratio is input_bits / latent_bits = 48 / latentChannels
 * for the 4x4-stride latent.
 */
class LearnedCodec : public CompressionMethod
{
  public:
    /**
     * @param latent_channels latent depth (12 -> CR 4, 8 -> CR 6,
     *                        6 -> CR 8)
     * @param seed            weight init seed
     */
    explicit LearnedCodec(int latent_channels = 12,
                          std::uint64_t seed = 31);
    ~LearnedCodec() override;

    /** Train the autoencoder on @p images (MSE objective). */
    void train(const Dataset &data, int epochs = 12,
               double learning_rate = 2e-3, int batch_size = 32);

    /** Mean squared reconstruction error on @p data. */
    double reconstructionMse(const Dataset &data);

    /**
     * Decode with the latent re-quantized to @p levels instead of the
     * nominal 256 — an evaluation hook for rate/distortion probing.
     */
    Tensor processAtLatentLevels(const Tensor &batch, int levels);

    std::string name() const override { return "Learned"; }
    double compressionRatio() const override;
    Tensor processImpl(const Tensor &batch) override;
    EncodingDomain domain() const override
    {
        return EncodingDomain::Digital;
    }
    Objective objective() const override { return Objective::TaskAgnostic; }
    std::string hardwareOverhead() const override { return "Medium"; }

    bool trained() const { return _trained; }

  private:
    int _latentChannels;
    std::unique_ptr<Sequential> _encoder;
    std::unique_ptr<Sequential> _decoder;
    bool _trained = false;

    Tensor encodeQuantized(const Tensor &batch, Mode mode);
};

} // namespace leca

#endif // LECA_COMPRESSION_LEARNED_CODEC_HH
