/**
 * @file
 * 8x8 type-II DCT used by the JPEG codec and as the sparsifying basis
 * of the compressive-sensing reconstruction.
 */

#ifndef LECA_COMPRESSION_DCT_HH
#define LECA_COMPRESSION_DCT_HH

#include <array>

namespace leca {

/**
 * JPEG zig-zag scan: kZigzag8[k] is the row-major index of the k-th
 * coefficient, ordering an 8x8 block by ascending spatial frequency —
 * the order transform codecs transmit (and zonally truncate) in.
 */
inline constexpr std::array<int, 64> kZigzag8 = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
};

/** 8x8 block DCT helper (orthonormal type-II). */
class Dct8
{
  public:
    Dct8();

    /** Forward DCT of a row-major 8x8 block. */
    void forward(const float *block, float *coeffs) const;

    /** Inverse DCT of a row-major 8x8 coefficient block. */
    void inverse(const float *coeffs, float *block) const;

    /** Basis matrix entry C[k][n] (transform row k, sample n). */
    double basis(int k, int n) const { return _c[k][n]; }

  private:
    std::array<std::array<double, 8>, 8> _c;
};

} // namespace leca

#endif // LECA_COMPRESSION_DCT_HH
