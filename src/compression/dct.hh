/**
 * @file
 * 8x8 type-II DCT used by the JPEG codec and as the sparsifying basis
 * of the compressive-sensing reconstruction.
 */

#ifndef LECA_COMPRESSION_DCT_HH
#define LECA_COMPRESSION_DCT_HH

#include <array>

namespace leca {

/** 8x8 block DCT helper (orthonormal type-II). */
class Dct8
{
  public:
    Dct8();

    /** Forward DCT of a row-major 8x8 block. */
    void forward(const float *block, float *coeffs) const;

    /** Inverse DCT of a row-major 8x8 coefficient block. */
    void inverse(const float *coeffs, float *block) const;

    /** Basis matrix entry C[k][n] (transform row k, sample n). */
    double basis(int k, int n) const { return _c[k][n]; }

  private:
    std::array<std::array<double, 8>, 8> _c;
};

} // namespace leca

#endif // LECA_COMPRESSION_DCT_HH
