#include "simple_methods.hh"

#include "tensor/ops.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

Tensor
ConventionalSensor::processImpl(const Tensor &batch)
{
    return quantizeTensor(batch, 0.0f, 1.0f, 256);
}

Tensor
SpatialDownsample::processImpl(const Tensor &batch)
{
    LECA_CHECK(batch.dim() == 4, "SD expects [N,C,H,W]");
    const int n = batch.size(0), c = batch.size(1);
    const int h = batch.size(2), w = batch.size(3);
    const int oh = h / _kh, ow = w / _kw;
    LECA_CHECK(oh > 0 && ow > 0, "SD kernel larger than image");

    Tensor pooled({n, c, oh, ow});
    const float inv = 1.0f / static_cast<float>(_kh * _kw);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i)
            for (int ch = 0; ch < c; ++ch)
                for (int oy = 0; oy < oh; ++oy)
                    for (int ox = 0; ox < ow; ++ox) {
                        float acc = 0.0f;
                        for (int ky = 0; ky < _kh; ++ky)
                            for (int kx = 0; kx < _kw; ++kx)
                                acc += batch.at(i, ch, oy * _kh + ky,
                                                ox * _kw + kx);
                        pooled.at(i, ch, oy, ox) = acc * inv;
                    }
    });
    // 8-bit quantization of the pooled samples, then upsampling.
    pooled = quantizeTensor(pooled, 0.0f, 1.0f, 256);
    return bilinearResize(pooled, h, w);
}

Tensor
LowResQuantizer::processImpl(const Tensor &batch)
{
    return quantizeTensor(batch, 0.0f, 1.0f, _qbits.levels());
}

} // namespace leca
