#include "simple_methods.hh"

#include "tensor/ops.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

Tensor
ConventionalSensor::processImpl(const Tensor &batch)
{
    return quantizeTensor(batch, 0.0f, 1.0f, 256);
}

Tensor
SpatialDownsample::pooledAverage(const Tensor &batch) const
{
    LECA_CHECK(batch.dim() == 4, "SD expects [N,C,H,W]");
    const int n = batch.size(0), c = batch.size(1);
    const int h = batch.size(2), w = batch.size(3);
    const int oh = h / _kh, ow = w / _kw;
    LECA_CHECK(oh > 0 && ow > 0, "SD kernel larger than image");

    Tensor pooled({n, c, oh, ow});
    const float inv = 1.0f / static_cast<float>(_kh * _kw);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i)
            for (int ch = 0; ch < c; ++ch)
                for (int oy = 0; oy < oh; ++oy)
                    for (int ox = 0; ox < ow; ++ox) {
                        float acc = 0.0f;
                        for (int ky = 0; ky < _kh; ++ky)
                            for (int kx = 0; kx < _kw; ++kx)
                                acc += batch.at(i, ch, oy * _kh + ky,
                                                ox * _kw + kx);
                        pooled.at(i, ch, oy, ox) = acc * inv;
                    }
    });
    return pooled;
}

Tensor
SpatialDownsample::processImpl(const Tensor &batch)
{
    // 8-bit quantization of the pooled samples, then upsampling.
    const Tensor pooled =
        quantizeTensor(pooledAverage(batch), 0.0f, 1.0f, 256);
    return bilinearResize(pooled, batch.size(2), batch.size(3));
}

WireStream
SpatialDownsample::wireSymbols(const Tensor &batch)
{
    const Tensor pooled = pooledAverage(batch);
    WireStream ws;
    ws.symbols.reserve(pooled.numel());
    for (std::size_t i = 0; i < pooled.numel(); ++i)
        ws.symbols.push_back(static_cast<std::uint8_t>(
            quantizeCode(pooled[i], 0.0f, 1.0f, 256)));
    ws.rawBits = 8.0 * static_cast<double>(pooled.numel());
    ws.predStride = static_cast<std::uint64_t>(pooled.size(3));
    return ws;
}

Tensor
LowResQuantizer::processImpl(const Tensor &batch)
{
    return quantizeTensor(batch, 0.0f, 1.0f, _qbits.levels());
}

WireStream
LowResQuantizer::wireSymbols(const Tensor &batch)
{
    const int levels = _qbits.levels();
    WireStream ws;
    ws.symbols.reserve(batch.numel());
    for (std::size_t i = 0; i < batch.numel(); ++i)
        ws.symbols.push_back(static_cast<std::uint8_t>(
            quantizeCode(batch[i], 0.0f, 1.0f, levels)));
    ws.rawBits = _qbits.bits() * static_cast<double>(batch.numel());
    ws.predStride = static_cast<std::uint64_t>(batch.size(3));
    return ws;
}

} // namespace leca
