/**
 * @file
 * The three simple baselines of Sec. 5.1: the conventional 8-bit
 * sensor (CNV), block-wise spatial down-sampling with bilinear
 * upsampling (SD), and the pixel-wise low-resolution quantizer (LR).
 */

#ifndef LECA_COMPRESSION_SIMPLE_METHODS_HH
#define LECA_COMPRESSION_SIMPLE_METHODS_HH

#include "compression/method.hh"
#include "nn/quantize.hh"

namespace leca {

/** Conventional sensor: pixel-wise uniform 8-bit quantization. */
class ConventionalSensor : public CompressionMethod
{
  public:
    std::string name() const override { return "CNV"; }
    double compressionRatio() const override { return 1.0; }
    Tensor processImpl(const Tensor &batch) override;
    EncodingDomain domain() const override { return EncodingDomain::Analog; }
    Objective objective() const override { return Objective::TaskAgnostic; }
    std::string hardwareOverhead() const override { return "None"; }
};

/**
 * Spatial down-sampling: (kh x kw) block averaging at 8 bits, bilinear
 * upsampling back to the input extent. The paper uses 2x2, 2x3 and 2x4
 * kernels for CR in {4, 6, 8} (Sec. 6.1).
 */
class SpatialDownsample : public CompressionMethod
{
  public:
    SpatialDownsample(int kh, int kw) : _kh(kh), _kw(kw) {}

    std::string name() const override { return "SD"; }
    double
    compressionRatio() const override
    {
        return static_cast<double>(_kh * _kw);
    }
    Tensor processImpl(const Tensor &batch) override;

    /** Wire: the 8-bit codes of the pooled (oh x ow) samples. */
    WireStream wireSymbols(const Tensor &batch) override;

    EncodingDomain domain() const override { return EncodingDomain::Mixed; }
    Objective objective() const override { return Objective::TaskAgnostic; }
    std::string hardwareOverhead() const override { return "Low"; }

  private:
    int _kh, _kw;

    /** Block-averaged [N,C,H/kh,W/kw] samples (shared encode stage). */
    Tensor pooledAverage(const Tensor &batch) const;
};

/** Pixel-wise uniform quantization at Q_bit < 8. */
class LowResQuantizer : public CompressionMethod
{
  public:
    explicit LowResQuantizer(QBits qbits) : _qbits(qbits) {}

    std::string name() const override { return "LR"; }
    double
    compressionRatio() const override
    {
        return 8.0 / _qbits.bits();
    }
    Tensor processImpl(const Tensor &batch) override;

    /** Wire: one Q_bit code per pixel (rawBits uses the real depth). */
    WireStream wireSymbols(const Tensor &batch) override;

    EncodingDomain domain() const override { return EncodingDomain::Analog; }
    Objective objective() const override { return Objective::TaskAgnostic; }
    std::string hardwareOverhead() const override { return "None"; }

    QBits qbits() const { return _qbits; }

  private:
    QBits _qbits;
};

} // namespace leca

#endif // LECA_COMPRESSION_SIMPLE_METHODS_HH
