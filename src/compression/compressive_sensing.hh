/**
 * @file
 * Block-based compressive sensing baseline (Sec. 5.1, after [63]):
 * each 8x8 block is measured through a random +/-1 matrix; the image
 * is reconstructed by iterative soft thresholding (ISTA) under a DCT
 * sparsity prior — the slowly-converging optimization the paper calls
 * out as CS's weakness for real-time vision (Sec. 2.2).
 */

#ifndef LECA_COMPRESSION_COMPRESSIVE_SENSING_HH
#define LECA_COMPRESSION_COMPRESSIVE_SENSING_HH

#include <cstdint>
#include <vector>

#include "compression/dct.hh"
#include "compression/method.hh"

namespace leca {

/** Compressive-sensing codec over non-overlapping 8x8 blocks. */
class CompressiveSensing : public CompressionMethod
{
  public:
    /**
     * @param ratio       N/m measurement compression (4 in the paper)
     * @param seed        random measurement matrix seed
     * @param ista_iters  reconstruction iterations
     */
    explicit CompressiveSensing(int ratio = 4, std::uint64_t seed = 42,
                                int ista_iters = 120);

    std::string name() const override { return "CS"; }
    double
    compressionRatio() const override
    {
        return static_cast<double>(_ratio);
    }
    Tensor processImpl(const Tensor &batch) override;

    /** Wire: 10-bit measurement codes, two little-endian bytes each. */
    WireStream wireSymbols(const Tensor &batch) override;

    EncodingDomain domain() const override { return EncodingDomain::Analog; }
    Objective objective() const override { return Objective::TaskAgnostic; }
    std::string hardwareOverhead() const override { return "Low"; }

    /** Measurements for one 8x8 block (exposed for tests). */
    std::vector<float> measureBlock(const float *block) const;

    /** ISTA reconstruction of one block from its measurements. */
    void reconstructBlock(const std::vector<float> &y, float *block) const;

    int measurementCount() const { return _m; }

  private:
    int _ratio;
    int _m;         //!< measurements per 64-sample block
    int _istaIters;
    Dct8 _dct;
    std::vector<float> _phi; //!< m x 64 random +/-1/sqrt(m)
    std::vector<float> _a;   //!< m x 64 sensing-in-DCT-domain matrix
    double _step;            //!< ISTA step size
    double _lambda;          //!< soft threshold
};

} // namespace leca

#endif // LECA_COMPRESSION_COMPRESSIVE_SENSING_HH
