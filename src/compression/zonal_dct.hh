/**
 * @file
 * Zonal 8x8 DCT baseline — the "DCT" row of the codec comparison: the
 * classic fixed-rate transform codec that keeps only the first `kept`
 * zig-zag coefficients of every 8x8 block at 8 bits and zeroes the
 * rest. Unlike JPEG it has no quality tables or variable-length
 * framing, so its wire is a fixed-rate coefficient stream — the
 * simplest transform-coding point between raw pixels and JPEG.
 */

#ifndef LECA_COMPRESSION_ZONAL_DCT_HH
#define LECA_COMPRESSION_ZONAL_DCT_HH

#include "compression/dct.hh"
#include "compression/method.hh"

namespace leca {

/** Fixed-rate zonal DCT codec; CR = 64 / kept. */
class ZonalDct : public CompressionMethod
{
  public:
    /** @param kept zig-zag coefficients retained per 8x8 block. */
    explicit ZonalDct(int kept = 16);

    std::string name() const override { return "DCT"; }
    double
    compressionRatio() const override
    {
        return 64.0 / static_cast<double>(_kept);
    }
    Tensor processImpl(const Tensor &batch) override;

    /** Wire: 8-bit codes of the kept coefficients, zig-zag order. */
    WireStream wireSymbols(const Tensor &batch) override;

    EncodingDomain domain() const override
    {
        return EncodingDomain::Digital;
    }
    Objective objective() const override { return Objective::TaskAgnostic; }
    std::string hardwareOverhead() const override { return "Medium"; }

    int kept() const { return _kept; }

  private:
    int _kept;
    Dct8 _dct;

    /** Coefficient quantizer range: orthonormal DC of [-0.5,0.5]^64. */
    static constexpr float kCoeffRange = 4.0f;
};

} // namespace leca

#endif // LECA_COMPRESSION_ZONAL_DCT_HH
