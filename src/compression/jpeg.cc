#include "jpeg.hh"

#include <algorithm>
#include <cmath>

#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

namespace {

// Annex K luminance / chrominance quantization tables.
constexpr int kLumaTable[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,
    12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,
    14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,
    24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
};
constexpr int kChromaTable[64] = {
    17, 18, 24, 47, 99, 99, 99, 99,
    18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
};

/** Bit category of a value (JPEG "size" field). */
int
category(int v)
{
    int a = std::abs(v);
    int bits = 0;
    while (a) {
        ++bits;
        a >>= 1;
    }
    return bits;
}

void
rgbToYcbcr(float r, float g, float b, float &y, float &cb, float &cr)
{
    y = 0.299f * r + 0.587f * g + 0.114f * b;
    cb = -0.168736f * r - 0.331264f * g + 0.5f * b + 0.5f;
    cr = 0.5f * r - 0.418688f * g - 0.081312f * b + 0.5f;
}

void
ycbcrToRgb(float y, float cb, float cr, float &r, float &g, float &b)
{
    const float cb0 = cb - 0.5f, cr0 = cr - 0.5f;
    r = y + 1.402f * cr0;
    g = y - 0.344136f * cb0 - 0.714136f * cr0;
    b = y + 1.772f * cb0;
}

} // namespace

JpegCodec::JpegCodec(int quality) : _quality(quality)
{
    LECA_CHECK(quality >= 1 && quality <= 100, "quality in [1,100]");
}

float
JpegCodec::quantStep(int u, int v, bool chroma) const
{
    // Standard IJG quality scaling.
    const int s = _quality < 50 ? 5000 / _quality : 200 - 2 * _quality;
    const int base = chroma ? kChromaTable[u * 8 + v]
                            : kLumaTable[u * 8 + v];
    int step = (base * s + 50) / 100;
    step = std::clamp(step, 1, 255);
    // Tables assume 8-bit samples; our signal lives in [0,1].
    return static_cast<float>(step) / 255.0f;
}

long
JpegCodec::blockBits(const int *coeffs, int prev_dc)
{
    // DC: difference category + average Huffman prefix (~3 bits).
    long bits = category(coeffs[0] - prev_dc) + 3;
    // AC: per nonzero coefficient, magnitude bits + ~6-bit run/size
    // prefix; one EOB symbol.
    for (int i = 1; i < 64; ++i)
        if (coeffs[i] != 0)
            bits += category(coeffs[i]) + 6;
    bits += 4; // EOB
    return bits;
}

Tensor
JpegCodec::processImpl(const Tensor &batch)
{
    LECA_CHECK(batch.dim() == 4 && batch.size(1) == 3,
                "JPEG expects [N,3,H,W]");
    const int n = batch.size(0), h = batch.size(2), w = batch.size(3);
    LECA_CHECK(h % 8 == 0 && w % 8 == 0, "JPEG needs 8x8 tiles");

    Tensor out(batch.shape());

    // Images are independent: each gets its own scratch planes and
    // contributes an integer bit count (order-insensitive sum).
    std::vector<long> image_bits(static_cast<std::size_t>(n), 0);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
    std::vector<float> planes(static_cast<std::size_t>(3) * h * w);
    std::vector<float> recon_planes(planes.size());
    float block[64], coeffs[64];
    int quant[64];

    for (int i = static_cast<int>(n0); i < n1; ++i) {
        long total_bits = 0;
        // Colour transform.
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x) {
                float yy, cb, cr;
                rgbToYcbcr(batch.at(i, 0, y, x), batch.at(i, 1, y, x),
                           batch.at(i, 2, y, x), yy, cb, cr);
                planes[static_cast<std::size_t>(0) * h * w + y * w + x] = yy;
                planes[static_cast<std::size_t>(1) * h * w + y * w + x] = cb;
                planes[static_cast<std::size_t>(2) * h * w + y * w + x] = cr;
            }
        for (int pl = 0; pl < 3; ++pl) {
            const bool chroma = pl > 0;
            int prev_dc = 0;
            for (int by = 0; by < h / 8; ++by)
                for (int bx = 0; bx < w / 8; ++bx) {
                    for (int y = 0; y < 8; ++y)
                        for (int x = 0; x < 8; ++x)
                            block[y * 8 + x] =
                                planes[static_cast<std::size_t>(pl) * h * w
                                       + (by * 8 + y) * w + bx * 8 + x]
                                - 0.5f;
                    _dct.forward(block, coeffs);
                    for (int u = 0; u < 8; ++u)
                        for (int v = 0; v < 8; ++v) {
                            const float q = quantStep(u, v, chroma);
                            quant[u * 8 + v] = static_cast<int>(
                                std::lround(coeffs[u * 8 + v] / q));
                        }
                    total_bits += blockBits(quant, prev_dc);
                    prev_dc = quant[0];
                    for (int u = 0; u < 8; ++u)
                        for (int v = 0; v < 8; ++v)
                            coeffs[u * 8 + v] =
                                static_cast<float>(quant[u * 8 + v])
                                * quantStep(u, v, chroma);
                    _dct.inverse(coeffs, block);
                    for (int y = 0; y < 8; ++y)
                        for (int x = 0; x < 8; ++x)
                            recon_planes[static_cast<std::size_t>(pl) * h * w
                                         + (by * 8 + y) * w + bx * 8 + x] =
                                block[y * 8 + x] + 0.5f;
                }
        }
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x) {
                float r, g, b;
                ycbcrToRgb(
                    recon_planes[static_cast<std::size_t>(0) * h * w
                                 + y * w + x],
                    recon_planes[static_cast<std::size_t>(1) * h * w
                                 + y * w + x],
                    recon_planes[static_cast<std::size_t>(2) * h * w
                                 + y * w + x],
                    r, g, b);
                out.at(i, 0, y, x) = std::clamp(r, 0.0f, 1.0f);
                out.at(i, 1, y, x) = std::clamp(g, 0.0f, 1.0f);
                out.at(i, 2, y, x) = std::clamp(b, 0.0f, 1.0f);
            }
        image_bits[static_cast<std::size_t>(i)] = total_bits;
    }
    });

    long total_bits = 0;
    for (long bits : image_bits)
        total_bits += bits;
    const double raw_bits = static_cast<double>(n) * 3 * h * w * 8;
    _lastRatio = raw_bits / static_cast<double>(std::max(1L, total_bits));
    return out;
}

WireStream
JpegCodec::wireSymbols(const Tensor &batch)
{
    LECA_CHECK(batch.dim() == 4 && batch.size(1) == 3,
               "JPEG expects [N,3,H,W]");
    const int n = batch.size(0), h = batch.size(2), w = batch.size(3);
    LECA_CHECK(h % 8 == 0 && w % 8 == 0, "JPEG needs 8x8 tiles");

    WireStream ws;
    // Signed value -> unsigned zig-zag integer -> LEB128 varint bytes:
    // small coefficients (the overwhelming majority after quantization)
    // cost one near-zero byte, which the entropy stage then crushes.
    const auto push_varint = [&ws](int v) {
        std::uint32_t u = (static_cast<std::uint32_t>(v) << 1)
                          ^ static_cast<std::uint32_t>(v >> 31);
        while (u >= 0x80) {
            ws.symbols.push_back(static_cast<std::uint8_t>(u) | 0x80);
            u >>= 7;
        }
        ws.symbols.push_back(static_cast<std::uint8_t>(u));
    };

    std::vector<float> planes(static_cast<std::size_t>(3) * h * w);
    float block[64], coeffs[64];
    for (int i = 0; i < n; ++i) {
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x) {
                float yy, cb, cr;
                rgbToYcbcr(batch.at(i, 0, y, x), batch.at(i, 1, y, x),
                           batch.at(i, 2, y, x), yy, cb, cr);
                planes[static_cast<std::size_t>(0) * h * w + y * w + x] = yy;
                planes[static_cast<std::size_t>(1) * h * w + y * w + x] = cb;
                planes[static_cast<std::size_t>(2) * h * w + y * w + x] = cr;
            }
        for (int pl = 0; pl < 3; ++pl) {
            const bool chroma = pl > 0;
            int prev_dc = 0;
            for (int by = 0; by < h / 8; ++by)
                for (int bx = 0; bx < w / 8; ++bx) {
                    for (int y = 0; y < 8; ++y)
                        for (int x = 0; x < 8; ++x)
                            block[y * 8 + x] =
                                planes[static_cast<std::size_t>(pl) * h * w
                                       + (by * 8 + y) * w + bx * 8 + x]
                                - 0.5f;
                    _dct.forward(block, coeffs);
                    for (int k = 0; k < 64; ++k) {
                        const int rm = kZigzag8[static_cast<std::size_t>(k)];
                        const float q = quantStep(rm / 8, rm % 8, chroma);
                        const int code = static_cast<int>(
                            std::lround(coeffs[rm] / q));
                        if (k == 0) {
                            push_varint(code - prev_dc);
                            prev_dc = code;
                        } else {
                            push_varint(code);
                        }
                    }
                }
        }
    }
    ws.rawBits = 8.0 * static_cast<double>(ws.symbols.size());
    ws.predStride = 0;  // varint framing defeats positional prediction
    return ws;
}

} // namespace leca
