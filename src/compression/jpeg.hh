/**
 * @file
 * Baseline JPEG-style codec (Sec. 6.4 "Standard compression"):
 * YCbCr transform, 8x8 DCT, standard quantization tables with quality
 * scaling, an entropy-size model for the achieved compression ratio,
 * and full decode for downstream evaluation.
 */

#ifndef LECA_COMPRESSION_JPEG_HH
#define LECA_COMPRESSION_JPEG_HH

#include "compression/dct.hh"
#include "compression/method.hh"

namespace leca {

/** JPEG-style codec; quality in [1, 100]. */
class JpegCodec : public CompressionMethod
{
  public:
    explicit JpegCodec(int quality = 50);

    std::string name() const override { return "JPEG"; }

    /** Achieved ratio of the last process() call. */
    double compressionRatio() const override { return _lastRatio; }

    Tensor processImpl(const Tensor &batch) override;

    /**
     * Wire: quantized coefficients in zig-zag order (DC as a delta
     * against the previous block), each mapped to an unsigned varint
     * byte sequence — the byte stream a real JPEG entropy stage codes.
     */
    WireStream wireSymbols(const Tensor &batch) override;

    EncodingDomain domain() const override
    {
        return EncodingDomain::Digital;
    }
    Objective objective() const override { return Objective::TaskAgnostic; }
    std::string hardwareOverhead() const override { return "High"; }

    int quality() const { return _quality; }

    /** Quantization step for coefficient (u,v) of the given plane. */
    float quantStep(int u, int v, bool chroma) const;

  private:
    int _quality;
    double _lastRatio = 1.0;
    Dct8 _dct;

    /** Entropy-model bit cost of one quantized coefficient block. */
    static long blockBits(const int *coeffs, int prev_dc);
};

} // namespace leca

#endif // LECA_COMPRESSION_JPEG_HH
