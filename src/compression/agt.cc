#include "agt.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/quantize.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

AccumGradientThreshold::AccumGradientThreshold(float threshold)
    : _threshold(threshold)
{
}

int
AccumGradientThreshold::processRow(const float *src, float *dst,
                                   int width) const
{
    // First pixel is always kept (8-bit quantized).
    std::vector<int> kept;
    kept.push_back(0);
    float last_kept = quantizeUniform(src[0], 0.0f, 1.0f, 256);
    float acc = 0.0f;
    for (int x = 1; x < width; ++x) {
        acc += std::abs(src[x] - src[x - 1]);
        if (acc >= _threshold || x == width - 1) {
            kept.push_back(x);
            acc = 0.0f;
        }
    }
    // Linear interpolation between kept samples.
    float prev_v = last_kept;
    int prev_x = 0;
    dst[0] = prev_v;
    for (std::size_t k = 1; k < kept.size(); ++k) {
        const int x = kept[k];
        const float v = quantizeUniform(src[x], 0.0f, 1.0f, 256);
        for (int i = prev_x + 1; i <= x; ++i) {
            const float t = static_cast<float>(i - prev_x)
                            / static_cast<float>(x - prev_x);
            dst[i] = prev_v + t * (v - prev_v);
        }
        prev_v = v;
        prev_x = x;
    }
    return static_cast<int>(kept.size());
}

Tensor
AccumGradientThreshold::processImpl(const Tensor &batch)
{
    LECA_CHECK(batch.dim() == 4, "AGT expects [N,C,H,W]");
    const int n = batch.size(0), c = batch.size(1);
    const int h = batch.size(2), w = batch.size(3);
    Tensor out(batch.shape());
    // Rows are independent; kept-sample counts are integers, so the
    // per-image partial sums below are order-insensitive.
    std::vector<std::int64_t> kept_per_image(static_cast<std::size_t>(n), 0);
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i) {
            std::int64_t image_kept = 0;
            for (int ch = 0; ch < c; ++ch)
                for (int y = 0; y < h; ++y) {
                    const float *src =
                        batch.data()
                        + ((static_cast<std::size_t>(i) * c + ch) * h + y)
                              * w;
                    float *dst =
                        out.data()
                        + ((static_cast<std::size_t>(i) * c + ch) * h + y)
                              * w;
                    image_kept += processRow(src, dst, w);
                }
            kept_per_image[static_cast<std::size_t>(i)] = image_kept;
        }
    });
    std::int64_t kept = 0;
    for (std::int64_t image_kept : kept_per_image)
        kept += image_kept;
    const std::int64_t total = static_cast<std::int64_t>(n) * c * h * w;
    _lastKept = static_cast<double>(kept) / static_cast<double>(total);
    _lastRatio = 1.0 / std::max(1e-9, _lastKept);
    return out;
}

void
AccumGradientThreshold::calibrate(const Tensor &calibration,
                                  double target_ratio)
{
    float lo = 0.0f, hi = 2.0f;
    for (int iter = 0; iter < 18; ++iter) {
        _threshold = 0.5f * (lo + hi);
        process(calibration);
        if (_lastRatio < target_ratio) {
            lo = _threshold; // too many samples kept -> raise threshold
        } else {
            hi = _threshold;
        }
    }
}

} // namespace leca
