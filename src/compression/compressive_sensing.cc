#include "compressive_sensing.hh"

#include <algorithm>
#include <cmath>

#include "nn/quantize.hh"
#include "util/check.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace leca {

CompressiveSensing::CompressiveSensing(int ratio, std::uint64_t seed,
                                       int ista_iters)
    : _ratio(ratio), _m(64 / ratio), _istaIters(ista_iters)
{
    LECA_CHECK(64 % ratio == 0, "CS ratio must divide 64");
    Rng rng(seed);
    const float scale = 1.0f / std::sqrt(static_cast<float>(_m));
    _phi.resize(static_cast<std::size_t>(_m) * 64);
    for (auto &v : _phi)
        v = rng.uniform() < 0.5 ? -scale : scale;

    // Sensing matrix in the DCT coefficient domain: A = Phi * B where
    // x = B s is the inverse 2-D DCT (B orthonormal).
    std::vector<float> basis(64 * 64);
    for (int p = 0; p < 64; ++p) {
        const int y = p / 8, x = p % 8;
        for (int k = 0; k < 64; ++k) {
            const int u = k / 8, v = k % 8;
            basis[static_cast<std::size_t>(p) * 64 + k] =
                static_cast<float>(_dct.basis(u, y) * _dct.basis(v, x));
        }
    }
    _a.assign(static_cast<std::size_t>(_m) * 64, 0.0f);
    for (int i = 0; i < _m; ++i)
        for (int k = 0; k < 64; ++k) {
            float acc = 0.0f;
            for (int p = 0; p < 64; ++p)
                acc += _phi[static_cast<std::size_t>(i) * 64 + p]
                       * basis[static_cast<std::size_t>(p) * 64 + k];
            _a[static_cast<std::size_t>(i) * 64 + k] = acc;
        }

    // Step below 1/||A||^2; B is orthonormal so ||A|| = ||Phi|| with
    // sigma_max(Phi) ~ (sqrt(64) + sqrt(m)) / sqrt(m).
    const double smax = (8.0 + std::sqrt(static_cast<double>(_m)))
                        / std::sqrt(static_cast<double>(_m));
    _step = 0.9 / (smax * smax);
    _lambda = 0.05;
}

std::vector<float>
CompressiveSensing::measureBlock(const float *block) const
{
    std::vector<float> y(static_cast<std::size_t>(_m));
    for (int i = 0; i < _m; ++i) {
        float acc = 0.0f;
        for (int p = 0; p < 64; ++p)
            acc += _phi[static_cast<std::size_t>(i) * 64 + p] * block[p];
        // 10-bit measurement quantization (CS needs high resolution).
        y[static_cast<std::size_t>(i)] =
            quantizeUniform(acc, -4.0f, 4.0f, 1024);
    }
    return y;
}

void
CompressiveSensing::reconstructBlock(const std::vector<float> &y,
                                     float *block) const
{
    // FISTA with lambda continuation: start with a strong sparsity
    // prior and relax it, which speeds up the slowly-converging
    // optimization the paper attributes to CS decoders (Sec. 2.2).
    std::vector<float> s(64, 0.0f);     // DCT coefficients
    std::vector<float> s_prev(64, 0.0f);
    std::vector<float> z(64, 0.0f);     // momentum point
    std::vector<float> residual(static_cast<std::size_t>(_m));
    double t_momentum = 1.0;
    for (int iter = 0; iter < _istaIters; ++iter) {
        const double lambda_iter =
            _lambda * (1.0 + 9.0 * (1.0 - static_cast<double>(iter)
                                              / _istaIters));
        // residual = y - A z
        for (int i = 0; i < _m; ++i) {
            float acc = 0.0f;
            for (int k = 0; k < 64; ++k)
                acc += _a[static_cast<std::size_t>(i) * 64 + k]
                       * z[static_cast<std::size_t>(k)];
            residual[static_cast<std::size_t>(i)] =
                y[static_cast<std::size_t>(i)] - acc;
        }
        // s = soft(z + step * A^T residual).
        for (int k = 0; k < 64; ++k) {
            float grad = 0.0f;
            for (int i = 0; i < _m; ++i)
                grad += _a[static_cast<std::size_t>(i) * 64 + k]
                        * residual[static_cast<std::size_t>(i)];
            float v = z[static_cast<std::size_t>(k)]
                      + static_cast<float>(_step) * grad;
            const float thr =
                static_cast<float>(_step * lambda_iter);
            if (v > thr) {
                v -= thr;
            } else if (v < -thr) {
                v += thr;
            } else {
                v = 0.0f;
            }
            s[static_cast<std::size_t>(k)] = v;
        }
        // FISTA momentum update.
        const double t_next =
            0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t_momentum * t_momentum));
        const float beta = static_cast<float>(
            (t_momentum - 1.0) / t_next);
        for (int k = 0; k < 64; ++k) {
            z[static_cast<std::size_t>(k)] =
                s[static_cast<std::size_t>(k)]
                + beta * (s[static_cast<std::size_t>(k)]
                          - s_prev[static_cast<std::size_t>(k)]);
        }
        s_prev = s;
        t_momentum = t_next;
    }

    // Debias: least-squares refit restricted to the recovered support
    // (removes the soft-threshold shrinkage bias).
    std::vector<bool> support(64, false);
    for (int k = 0; k < 64; ++k)
        support[static_cast<std::size_t>(k)] =
            std::abs(s[static_cast<std::size_t>(k)]) > 1e-5f;
    for (int iter = 0; iter < 60; ++iter) {
        for (int i = 0; i < _m; ++i) {
            float acc = 0.0f;
            for (int k = 0; k < 64; ++k)
                acc += _a[static_cast<std::size_t>(i) * 64 + k]
                       * s[static_cast<std::size_t>(k)];
            residual[static_cast<std::size_t>(i)] =
                y[static_cast<std::size_t>(i)] - acc;
        }
        for (int k = 0; k < 64; ++k) {
            if (!support[static_cast<std::size_t>(k)])
                continue;
            float grad = 0.0f;
            for (int i = 0; i < _m; ++i)
                grad += _a[static_cast<std::size_t>(i) * 64 + k]
                        * residual[static_cast<std::size_t>(i)];
            s[static_cast<std::size_t>(k)] +=
                static_cast<float>(_step) * grad;
        }
    }

    // x = B s via the inverse DCT.
    _dct.inverse(s.data(), block);
}

Tensor
CompressiveSensing::processImpl(const Tensor &batch)
{
    LECA_CHECK(batch.dim() == 4, "CS expects [N,C,H,W]");
    const int n = batch.size(0), c = batch.size(1);
    const int h = batch.size(2), w = batch.size(3);
    LECA_CHECK(h % 8 == 0 && w % 8 == 0, "CS needs 8x8-divisible frames");

    Tensor out(batch.shape());
    // measureBlock/reconstructBlock are const and every block writes a
    // disjoint 8x8 tile, so the batch parallelizes with per-image
    // scratch.
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        float block[64];
        float recon[64];
        for (int i = static_cast<int>(n0); i < n1; ++i)
            for (int ch = 0; ch < c; ++ch)
                for (int by = 0; by < h / 8; ++by)
                    for (int bx = 0; bx < w / 8; ++bx) {
                        for (int y = 0; y < 8; ++y)
                            for (int x = 0; x < 8; ++x)
                                block[y * 8 + x] = batch.at(
                                    i, ch, by * 8 + y, bx * 8 + x);
                        const auto y_meas = measureBlock(block);
                        reconstructBlock(y_meas, recon);
                        for (int y = 0; y < 8; ++y)
                            for (int x = 0; x < 8; ++x)
                                out.at(i, ch, by * 8 + y, bx * 8 + x) =
                                    std::clamp(recon[y * 8 + x], 0.0f, 1.0f);
                    }
    });
    return out;
}

WireStream
CompressiveSensing::wireSymbols(const Tensor &batch)
{
    LECA_CHECK(batch.dim() == 4, "CS expects [N,C,H,W]");
    const int n = batch.size(0), c = batch.size(1);
    const int h = batch.size(2), w = batch.size(3);
    LECA_CHECK(h % 8 == 0 && w % 8 == 0, "CS needs 8x8-divisible frames");

    WireStream ws;
    ws.symbols.reserve(static_cast<std::size_t>(n) * c * (h / 8) * (w / 8)
                       * _m * 2);
    float block[64];
    for (int i = 0; i < n; ++i)
        for (int ch = 0; ch < c; ++ch)
            for (int by = 0; by < h / 8; ++by)
                for (int bx = 0; bx < w / 8; ++bx) {
                    for (int y = 0; y < 8; ++y)
                        for (int x = 0; x < 8; ++x)
                            block[y * 8 + x] =
                                batch.at(i, ch, by * 8 + y, bx * 8 + x);
                    // Same projection as measureBlock, but kept as the
                    // 10-bit ADC codes a sensor would ship.
                    for (int mi = 0; mi < _m; ++mi) {
                        float acc = 0.0f;
                        for (int p = 0; p < 64; ++p)
                            acc += _phi[static_cast<std::size_t>(mi) * 64
                                        + p]
                                   * block[p];
                        const int code =
                            quantizeCode(acc, -4.0f, 4.0f, 1024);
                        ws.symbols.push_back(
                            static_cast<std::uint8_t>(code & 0xFF));
                        ws.symbols.push_back(
                            static_cast<std::uint8_t>(code >> 8));
                    }
                }
    ws.rawBits = 10.0 * static_cast<double>(ws.symbols.size() / 2);
    // Delta across corresponding bytes of consecutive measurements.
    ws.predStride = 2;
    return ws;
}

} // namespace leca
