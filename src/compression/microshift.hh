/**
 * @file
 * Microshift baseline (Sec. 5.1, after [83]): a fixed sub-quantizer
 * value-shifting pattern is added to each block of pixels before
 * coarse quantization; the decoder subtracts the known pattern and
 * smooths, recovering intermediate intensities from the spatial dither.
 */

#ifndef LECA_COMPRESSION_MICROSHIFT_HH
#define LECA_COMPRESSION_MICROSHIFT_HH

#include "compression/method.hh"

namespace leca {

/** Microshift codec with a 4x4 shift pattern and Q_bit quantization. */
class Microshift : public CompressionMethod
{
  public:
    /** @param bits coarse quantizer depth (2 in the paper's Fig. 13). */
    explicit Microshift(int bits = 2);

    std::string name() const override { return "MS"; }
    double
    compressionRatio() const override
    {
        // Image dependent 4x..5x in the paper; nominal bit ratio here.
        return 8.0 / _bits;
    }
    Tensor processImpl(const Tensor &batch) override;

    /** Wire: the shifted coarse Q_bit codes, one per pixel. */
    WireStream wireSymbols(const Tensor &batch) override;

    EncodingDomain domain() const override
    {
        return EncodingDomain::Digital;
    }
    Objective objective() const override { return Objective::TaskAgnostic; }
    std::string hardwareOverhead() const override { return "Medium"; }

    /** The shift (fraction of one quantizer step) at pattern (y, x). */
    float shiftAt(int y, int x) const;

  private:
    int _bits;
    int _levels;
};

} // namespace leca

#endif // LECA_COMPRESSION_MICROSHIFT_HH
