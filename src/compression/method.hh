/**
 * @file
 * Common interface of every image compression method evaluated in the
 * paper (Sec. 5.1). A method consumes an RGB batch and returns the
 * reconstruction a frozen downstream classifier would see; its
 * compression ratio follows the paper's bit-accounting.
 */

#ifndef LECA_COMPRESSION_METHOD_HH
#define LECA_COMPRESSION_METHOD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hh"
#include "util/check.hh"

namespace leca {

/**
 * The symbol stream a compression method would actually put on the
 * wire for one batch, byte-serialized for the entropy coder
 * (leca::bitstream, bench/codec_corpus). `rawBits` is the fixed-rate
 * cost of shipping the symbols uncoded — the paper's element-count
 * accounting — against which entropy coding is measured. `predStride`
 * is the delta-predictor distance matching the stream's layout
 * (0 disables prediction); multi-byte symbols must fold it in.
 */
struct WireStream
{
    std::vector<std::uint8_t> symbols;
    double rawBits = 0.0;
    std::uint64_t predStride = 0;
};

/** Where a method's encoder runs (Table 1). */
enum class EncodingDomain { Analog, Digital, Mixed };

/** What a method optimizes for (Table 1). */
enum class Objective { TaskAgnostic, TaskSpecific };

/** Abstract compression baseline. */
class CompressionMethod
{
  public:
    virtual ~CompressionMethod() = default;

    /** Short display name (CNV, SD, LR, CS, MS, AGT, JPEG, LeCA). */
    virtual std::string name() const = 0;

    /** Nominal compression ratio of the current configuration. */
    virtual double compressionRatio() const = 0;

    /**
     * Encode + decode a batch [N,3,H,W] in [0,1]; the result has the
     * same shape and feeds the frozen downstream model.
     *
     * Non-virtual: enforces the interface contract (4-D RGB input,
     * shape-preserving output, sane compression ratio) around the
     * method-specific processImpl().
     */
    Tensor
    process(const Tensor &batch)
    {
        LECA_CHECK(batch.dim() == 4 && batch.size(1) == 3,
                   name(), " expects an [N,3,H,W] batch, got ",
                   detail::formatShape(batch.shape()));
        LECA_CHECK(batch.size(0) > 0 && batch.size(2) > 0
                       && batch.size(3) > 0,
                   name(), " given a degenerate batch ",
                   detail::formatShape(batch.shape()));
        Tensor result = processImpl(batch);
        LECA_CHECK_SAME_SHAPE(result, batch);
        LECA_CHECK(compressionRatio() > 0.0, name(),
                   " reports non-positive compression ratio ",
                   compressionRatio());
        return result;
    }

    /**
     * The transmitted symbols for @p batch ([N,3,H,W] in [0,1]).
     * Default: the conventional sensor's wire — one 8-bit code per
     * pixel in NCHW scan order, delta-predicted against the pixel
     * above. Methods whose wire is not raw pixel codes override this
     * with their real payload (pooled samples, coarse codes, CS
     * measurements, transform coefficients).
     */
    virtual WireStream wireSymbols(const Tensor &batch);

    /** Table 1 metadata. */
    virtual EncodingDomain domain() const = 0;
    virtual Objective objective() const = 0;
    virtual std::string qualityMetric() const { return "PSNR"; }
    virtual std::string hardwareOverhead() const = 0;

  protected:
    /** Method-specific encode + decode; contract enforced by process(). */
    virtual Tensor processImpl(const Tensor &batch) = 0;
};

using CompressionMethodPtr = std::unique_ptr<CompressionMethod>;

} // namespace leca

#endif // LECA_COMPRESSION_METHOD_HH
