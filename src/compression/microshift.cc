#include "microshift.hh"

#include <algorithm>

#include "nn/quantize.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

namespace {

// Classic 4x4 ordered-dither index matrix; normalised it spreads the
// shifts uniformly over one quantizer step.
constexpr int kPattern[4][4] = {
    {0, 8, 2, 10},
    {12, 4, 14, 6},
    {3, 11, 1, 9},
    {15, 7, 13, 5},
};

} // namespace

Microshift::Microshift(int bits) : _bits(bits), _levels(1 << bits)
{
    LECA_CHECK(bits >= 1 && bits <= 4, "Microshift expects 1..4 bits");
}

float
Microshift::shiftAt(int y, int x) const
{
    // Centered fraction in (-0.5, 0.5) of one quantizer step.
    return (static_cast<float>(kPattern[y & 3][x & 3]) + 0.5f) / 16.0f
           - 0.5f;
}

Tensor
Microshift::processImpl(const Tensor &batch)
{
    LECA_CHECK(batch.dim() == 4, "MS expects [N,C,H,W]");
    const int n = batch.size(0), c = batch.size(1);
    const int h = batch.size(2), w = batch.size(3);
    const float step = 1.0f / static_cast<float>(_levels - 1);

    Tensor dequant(batch.shape());
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i)
            for (int ch = 0; ch < c; ++ch)
                for (int y = 0; y < h; ++y)
                    for (int x = 0; x < w; ++x) {
                        const float shift = shiftAt(y, x) * step;
                        const float q = quantizeUniform(
                            batch.at(i, ch, y, x) + shift, 0.0f, 1.0f,
                            _levels);
                        dequant.at(i, ch, y, x) =
                            std::clamp(q - shift, 0.0f, 1.0f);
                    }
    });

    // Decoder smoothing: neighbouring pixels carry different shifts, so
    // a local average recovers intermediate intensities. The smoothing
    // pass reads only `dequant` (fully materialised above) and writes
    // only `out`, so it parallelizes per image too.
    Tensor out(batch.shape());
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (int i = static_cast<int>(n0); i < n1; ++i)
            for (int ch = 0; ch < c; ++ch)
                for (int y = 0; y < h; ++y)
                    for (int x = 0; x < w; ++x) {
                        float acc = 0.0f;
                        int count = 0;
                        for (int dy = -1; dy <= 1; ++dy)
                            for (int dx = -1; dx <= 1; ++dx) {
                                const int yy = y + dy, xx = x + dx;
                                if (yy < 0 || yy >= h || xx < 0 || xx >= w)
                                    continue;
                                acc += dequant.at(i, ch, yy, xx);
                                ++count;
                            }
                        const float smooth = acc / static_cast<float>(count);
                        out.at(i, ch, y, x) =
                            0.5f * dequant.at(i, ch, y, x) + 0.5f * smooth;
                    }
    });
    return out;
}

WireStream
Microshift::wireSymbols(const Tensor &batch)
{
    LECA_CHECK(batch.dim() == 4, "MS expects [N,C,H,W]");
    const int n = batch.size(0), c = batch.size(1);
    const int h = batch.size(2), w = batch.size(3);
    const float step = 1.0f / static_cast<float>(_levels - 1);

    WireStream ws;
    ws.symbols.reserve(batch.numel());
    for (int i = 0; i < n; ++i)
        for (int ch = 0; ch < c; ++ch)
            for (int y = 0; y < h; ++y)
                for (int x = 0; x < w; ++x) {
                    const float shift = shiftAt(y, x) * step;
                    ws.symbols.push_back(static_cast<std::uint8_t>(
                        quantizeCode(batch.at(i, ch, y, x) + shift, 0.0f,
                                     1.0f, _levels)));
                }
    ws.rawBits = static_cast<double>(_bits)
                 * static_cast<double>(batch.numel());
    ws.predStride = static_cast<std::uint64_t>(w);
    return ws;
}

} // namespace leca
