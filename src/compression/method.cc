#include "compression/method.hh"

#include "nn/quantize.hh"

namespace leca {

WireStream
CompressionMethod::wireSymbols(const Tensor &batch)
{
    LECA_CHECK(batch.dim() == 4, name(),
               " wireSymbols expects an [N,C,H,W] batch, got ",
               detail::formatShape(batch.shape()));
    WireStream ws;
    ws.symbols.reserve(batch.numel());
    for (std::size_t i = 0; i < batch.numel(); ++i)
        ws.symbols.push_back(static_cast<std::uint8_t>(
            quantizeCode(batch[i], 0.0f, 1.0f, 256)));
    ws.rawBits = 8.0 * static_cast<double>(batch.numel());
    // NCHW scan order: the pixel above sits one row width back.
    ws.predStride = static_cast<std::uint64_t>(batch.size(3));
    return ws;
}

} // namespace leca
