#include "zonal_dct.hh"

#include <algorithm>

#include "nn/quantize.hh"
#include "util/check.hh"
#include "util/parallel.hh"

namespace leca {

ZonalDct::ZonalDct(int kept) : _kept(kept)
{
    LECA_CHECK(kept >= 1 && kept <= 64,
               "ZonalDct keeps 1..64 coefficients, got ", kept);
}

Tensor
ZonalDct::processImpl(const Tensor &batch)
{
    const int n = batch.size(0), c = batch.size(1);
    const int h = batch.size(2), w = batch.size(3);
    LECA_CHECK(h % 8 == 0 && w % 8 == 0, "DCT needs 8x8 tiles");

    Tensor out(batch.shape());
    parallelFor(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
        float block[64], coeffs[64];
        for (int i = static_cast<int>(n0); i < n1; ++i)
            for (int ch = 0; ch < c; ++ch)
                for (int by = 0; by < h / 8; ++by)
                    for (int bx = 0; bx < w / 8; ++bx) {
                        for (int y = 0; y < 8; ++y)
                            for (int x = 0; x < 8; ++x)
                                block[y * 8 + x] =
                                    batch.at(i, ch, by * 8 + y, bx * 8 + x)
                                    - 0.5f;
                        _dct.forward(block, coeffs);
                        // Zonal truncation + 8-bit round-trip of the
                        // kept low-frequency coefficients.
                        for (int k = 0; k < 64; ++k) {
                            const int rm =
                                kZigzag8[static_cast<std::size_t>(k)];
                            coeffs[rm] =
                                k < _kept
                                    ? quantizeUniform(coeffs[rm],
                                                      -kCoeffRange,
                                                      kCoeffRange, 256)
                                    : 0.0f;
                        }
                        _dct.inverse(coeffs, block);
                        for (int y = 0; y < 8; ++y)
                            for (int x = 0; x < 8; ++x)
                                out.at(i, ch, by * 8 + y, bx * 8 + x) =
                                    std::clamp(block[y * 8 + x] + 0.5f,
                                               0.0f, 1.0f);
                    }
    });
    return out;
}

WireStream
ZonalDct::wireSymbols(const Tensor &batch)
{
    const int n = batch.size(0), c = batch.size(1);
    const int h = batch.size(2), w = batch.size(3);
    LECA_CHECK(h % 8 == 0 && w % 8 == 0, "DCT needs 8x8 tiles");

    WireStream ws;
    ws.symbols.reserve(static_cast<std::size_t>(n) * c * (h / 8) * (w / 8)
                       * _kept);
    float block[64], coeffs[64];
    for (int i = 0; i < n; ++i)
        for (int ch = 0; ch < c; ++ch)
            for (int by = 0; by < h / 8; ++by)
                for (int bx = 0; bx < w / 8; ++bx) {
                    for (int y = 0; y < 8; ++y)
                        for (int x = 0; x < 8; ++x)
                            block[y * 8 + x] =
                                batch.at(i, ch, by * 8 + y, bx * 8 + x)
                                - 0.5f;
                    _dct.forward(block, coeffs);
                    for (int k = 0; k < _kept; ++k)
                        ws.symbols.push_back(static_cast<std::uint8_t>(
                            quantizeCode(
                                coeffs[kZigzag8[static_cast<std::size_t>(
                                    k)]],
                                -kCoeffRange, kCoeffRange, 256)));
                }
    ws.rawBits = 8.0 * static_cast<double>(ws.symbols.size());
    // Delta against the same zig-zag position in the previous block.
    ws.predStride = static_cast<std::uint64_t>(_kept);
    return ws;
}

} // namespace leca
