/**
 * @file
 * Accumulated gradient thresholding baseline (Sec. 5.1, after [38]):
 * pixel gradients are accumulated along each row and pixels are
 * skipped until the running sum crosses a threshold; skipped pixels
 * are reconstructed by interpolation between the kept samples.
 */

#ifndef LECA_COMPRESSION_AGT_HH
#define LECA_COMPRESSION_AGT_HH

#include "compression/method.hh"

namespace leca {

/** AGT codec with a tunable skip threshold. */
class AccumGradientThreshold : public CompressionMethod
{
  public:
    /** @param threshold accumulated |gradient| that forces a sample. */
    explicit AccumGradientThreshold(float threshold = 0.12f);

    std::string name() const override { return "AGT"; }
    double compressionRatio() const override { return _lastRatio; }
    Tensor processImpl(const Tensor &batch) override;
    EncodingDomain domain() const override { return EncodingDomain::Mixed; }
    Objective objective() const override { return Objective::TaskAgnostic; }
    std::string hardwareOverhead() const override { return "Medium"; }

    /**
     * Binary-search the threshold so the kept-pixel ratio approaches
     * 1/target_ratio on @p calibration images.
     */
    void calibrate(const Tensor &calibration, double target_ratio);

    float threshold() const { return _threshold; }

    /** Kept-pixel fraction of the last process() call. */
    double lastKeptFraction() const { return _lastKept; }

  private:
    float _threshold;
    double _lastRatio = 4.0;
    double _lastKept = 0.25;

    /** Process one row of one channel; returns kept count. */
    int processRow(const float *src, float *dst, int width) const;
};

} // namespace leca

#endif // LECA_COMPRESSION_AGT_HH
