#include "dct.hh"

#include <cmath>

namespace leca {

Dct8::Dct8()
{
    for (int k = 0; k < 8; ++k) {
        const double scale = k == 0 ? std::sqrt(1.0 / 8.0)
                                    : std::sqrt(2.0 / 8.0);
        for (int n = 0; n < 8; ++n)
            _c[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)] =
                scale * std::cos(M_PI * (2.0 * n + 1.0) * k / 16.0);
    }
}

void
Dct8::forward(const float *block, float *coeffs) const
{
    // Separable: rows then columns.
    double tmp[64];
    for (int y = 0; y < 8; ++y)
        for (int k = 0; k < 8; ++k) {
            double acc = 0.0;
            for (int n = 0; n < 8; ++n)
                acc += _c[static_cast<std::size_t>(k)]
                         [static_cast<std::size_t>(n)] * block[y * 8 + n];
            tmp[y * 8 + k] = acc;
        }
    for (int x = 0; x < 8; ++x)
        for (int k = 0; k < 8; ++k) {
            double acc = 0.0;
            for (int n = 0; n < 8; ++n)
                acc += _c[static_cast<std::size_t>(k)]
                         [static_cast<std::size_t>(n)] * tmp[n * 8 + x];
            coeffs[k * 8 + x] = static_cast<float>(acc);
        }
}

void
Dct8::inverse(const float *coeffs, float *block) const
{
    double tmp[64];
    for (int x = 0; x < 8; ++x)
        for (int n = 0; n < 8; ++n) {
            double acc = 0.0;
            for (int k = 0; k < 8; ++k)
                acc += _c[static_cast<std::size_t>(k)]
                         [static_cast<std::size_t>(n)] * coeffs[k * 8 + x];
            tmp[n * 8 + x] = acc;
        }
    for (int y = 0; y < 8; ++y)
        for (int n = 0; n < 8; ++n) {
            double acc = 0.0;
            for (int k = 0; k < 8; ++k)
                acc += _c[static_cast<std::size_t>(k)]
                         [static_cast<std::size_t>(n)] * tmp[y * 8 + k];
            block[y * 8 + n] = static_cast<float>(acc);
        }
}

} // namespace leca
