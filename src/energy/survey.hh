/**
 * @file
 * The 37-paper CIS survey behind Fig. 2(c): per-design shares of power,
 * row readout time, and area attributable to the ADC and output buffer.
 *
 * The paper cites twelve of the surveyed designs explicitly
 * ([11,14,15,16,33,36,40,41,50,64,71,72]); the remaining entries are
 * anonymous survey rows. Individual shares here are representative
 * values reconstructed so that the aggregate statistics reproduce the
 * figure: ADC+buffer ~69 % of sensor power, ~34 % of row readout time,
 * and >60 % of pixel-array-adjacent area.
 */

#ifndef LECA_ENERGY_SURVEY_HH
#define LECA_ENERGY_SURVEY_HH

#include <string>
#include <vector>

namespace leca {

/** One surveyed CIS design. */
struct CisSurveyEntry
{
    std::string key;  //!< citation key or survey id
    int year;
    double adcBufferPowerShare; //!< fraction of sensor power
    double readoutTimeShare;    //!< fraction of pixel-row readout time
    double adcBufferAreaShare;  //!< fraction of (pixel+readout) area
};

/** The full survey table and its aggregates. */
class CisSurvey
{
  public:
    CisSurvey();

    const std::vector<CisSurveyEntry> &entries() const { return _entries; }
    std::size_t size() const { return _entries.size(); }

    double meanPowerShare() const;
    double meanReadoutTimeShare() const;
    double meanAreaShare() const;

  private:
    std::vector<CisSurveyEntry> _entries;

    double meanOf(double CisSurveyEntry::*field) const;
};

} // namespace leca

#endif // LECA_ENERGY_SURVEY_HH
