/**
 * @file
 * Analytic per-frame activity models of the baseline sensor designs
 * compared in Fig. 13. CNV and LeCA activity comes from the actual
 * hw::LecaSensorChip simulation; the alternative sensors (SD, LR, CS,
 * MS, AGT) are described by the event counts their published
 * architectures imply, so all methods share one EnergyModel.
 */

#ifndef LECA_ENERGY_BASELINE_ACTIVITY_HH
#define LECA_ENERGY_BASELINE_ACTIVITY_HH

#include <string>

#include "hw/stats.hh"

namespace leca {

/** A named sensor design point for the Fig. 13 comparison. */
struct SensorActivity
{
    std::string name;
    ChipStats stats;
    double extraDigitalPj = 0.0; //!< per-frame digital engine energy
    double compressionRatio = 1.0;
};

/** Conventional full-resolution sensor: every pixel digitized at 8b. */
SensorActivity cnvActivity(int raw_rows, int raw_cols);

/**
 * Spatial down-sampling sensor at CR 4: vertical 2x analog binning on
 * the shared column line plus horizontal digital averaging, 8-bit ADC.
 */
SensorActivity sdActivity(int raw_rows, int raw_cols);

/** Low-resolution quantizer: pixel-wise ADC at @p bits. */
SensorActivity lrActivity(int raw_rows, int raw_cols, double bits);

/**
 * Compressive-sensing sensor per [63]: column-parallel analog random
 * projections (1 MAC/pixel), 1/4 measurement rate, 10-bit ADC (CS
 * reconstruction demands high quantization resolution, Sec. 6.3).
 */
SensorActivity csActivity(int raw_rows, int raw_cols);

/**
 * Microshift [83]: digital value-shifting compression; every pixel is
 * A/D converted (2-bit effective output + shift pattern bookkeeping),
 * with a per-pixel digital engine cost.
 */
SensorActivity msActivity(int raw_rows, int raw_cols);

/**
 * Accumulated gradient thresholding [38]: all pixels read, ~1/4
 * digitized at 8-bit after the gradient skip logic.
 */
SensorActivity agtActivity(int raw_rows, int raw_cols);

} // namespace leca

#endif // LECA_ENERGY_BASELINE_ACTIVITY_HH
