#include "baseline_activity.hh"

#include <cmath>

namespace leca {

namespace {

std::int64_t
pixelsOf(int raw_rows, int raw_cols)
{
    return static_cast<std::int64_t>(raw_rows) * raw_cols;
}

/** Fill the SRAM/link counters for @p payload_bits of frame output. */
void
accountOutput(ChipStats &stats, std::int64_t payload_bits)
{
    stats.globalSramWriteBits += payload_bits;
    stats.globalSramReadBits += payload_bits;
    stats.outputLinkBits += payload_bits;
}

} // namespace

SensorActivity
cnvActivity(int raw_rows, int raw_cols)
{
    const std::int64_t p = pixelsOf(raw_rows, raw_cols);
    SensorActivity a;
    a.name = "CNV";
    a.compressionRatio = 1.0;
    a.stats.pixelReads = p;
    a.stats.adcConversions[8.0] = p;
    accountOutput(a.stats, p * 8);
    return a;
}

SensorActivity
sdActivity(int raw_rows, int raw_cols)
{
    const std::int64_t p = pixelsOf(raw_rows, raw_cols);
    SensorActivity a;
    a.name = "SD";
    a.compressionRatio = 4.0;
    a.stats.pixelReads = p;
    // Vertical 2x binning halves the conversion count; the horizontal
    // average is digital, keeping full-rate column sampling.
    a.stats.adcConversions[8.0] = p / 2;
    accountOutput(a.stats, (p / 4) * 8);
    a.extraDigitalPj = 0.5 * static_cast<double>(p); // adders
    return a;
}

SensorActivity
lrActivity(int raw_rows, int raw_cols, double bits)
{
    const std::int64_t p = pixelsOf(raw_rows, raw_cols);
    SensorActivity a;
    a.name = "LR";
    a.compressionRatio = 8.0 / bits;
    a.stats.pixelReads = p;
    a.stats.adcConversions[bits] = p;
    accountOutput(a.stats, static_cast<std::int64_t>(
        std::llround(static_cast<double>(p) * bits)));
    return a;
}

SensorActivity
csActivity(int raw_rows, int raw_cols)
{
    const std::int64_t p = pixelsOf(raw_rows, raw_cols);
    SensorActivity a;
    a.name = "CS";
    a.compressionRatio = 4.0;
    a.stats.pixelReads = p;
    a.stats.macOps = p;       // analog random-projection MACs
    a.stats.iBufferWrites = p;
    a.stats.adcConversions[10.0] = p / 4;
    accountOutput(a.stats, (p / 4) * 10);
    return a;
}

SensorActivity
msActivity(int raw_rows, int raw_cols)
{
    const std::int64_t p = pixelsOf(raw_rows, raw_cols);
    SensorActivity a;
    a.name = "MS";
    a.compressionRatio = 4.0; // image dependent, 4x..5x (Fig. 13 note)
    a.stats.pixelReads = p;
    a.stats.adcConversions[2.0] = p; // pixel-wise low-res conversion
    accountOutput(a.stats, p * 2);
    // Value-shift pattern application + bitmap coding engine.
    a.extraDigitalPj = 35.0 * static_cast<double>(p);
    return a;
}

SensorActivity
agtActivity(int raw_rows, int raw_cols)
{
    const std::int64_t p = pixelsOf(raw_rows, raw_cols);
    SensorActivity a;
    a.name = "AGT";
    a.compressionRatio = 4.0;
    a.stats.pixelReads = p;
    // Gradient accumulation skips ~3/4 of the conversions.
    a.stats.adcConversions[8.0] = p / 4;
    accountOutput(a.stats, (p / 4) * 8);
    // Per-pixel gradient accumulate/compare logic.
    a.extraDigitalPj = 18.0 * static_cast<double>(p);
    return a;
}

} // namespace leca
