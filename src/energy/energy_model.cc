#include "energy_model.hh"

#include <cmath>

namespace leca {

double
EnergyModel::adcConversionPj(double bits) const
{
    if (bits < 2.0) {
        // Ternary comparator path (Sec. 4.3): no SAR bit cycling.
        return _params.ternaryCmpPj;
    }
    return _params.adcAlphaPj * std::pow(2.0, bits)
           + _params.adcBetaPj * bits + _params.adcGammaPj;
}

EnergyBreakdown
EnergyModel::fromStats(const ChipStats &stats, double extra_digital_pj) const
{
    EnergyBreakdown e;
    e.pixelNj = stats.pixelReads * _params.pixelReadPj * 1e-3;
    e.analogPeNj = (stats.iBufferWrites * _params.iBufferWritePj
                    + stats.macOps * _params.macPj) * 1e-3;
    double adc_pj = 0.0;
    for (const auto &[bits, count] : stats.adcConversions)
        adc_pj += count * adcConversionPj(bits);
    e.adcNj = adc_pj * 1e-3;
    e.sramNj = ((stats.localSramReadBits + stats.localSramWriteBits)
                    * _params.localSramBitPj +
                (stats.globalSramReadBits + stats.globalSramWriteBits)
                    * _params.globalSramBitPj) * 1e-3;
    e.commNj = stats.outputLinkBits * _params.linkBitPj * 1e-3;
    e.digitalNj = (_params.digitalPerFramePj + extra_digital_pj) * 1e-3;
    return e;
}

} // namespace leca
