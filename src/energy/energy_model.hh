/**
 * @file
 * Component-level energy model of the sensor chip (Fig. 13).
 *
 * Unit energies come from the paper where stated (12.1 pJ per pixel
 * exposure+readout, [73]) or from standard physical models (C*V^2 for
 * switched-capacitor events, SAR ADC energy alpha*2^b + beta*b + gamma).
 * The free coefficients are calibrated once — against the paper's
 * *component ratios* (ADC 10.1x and communication 5x below CNV at
 * CR = 4) — and then shared by every method, so the cross-method
 * comparisons of Fig. 13 are produced by event counts, not per-method
 * tuning. See EXPERIMENTS.md for the calibration record.
 */

#ifndef LECA_ENERGY_ENERGY_MODEL_HH
#define LECA_ENERGY_ENERGY_MODEL_HH

#include "hw/stats.hh"

namespace leca {

/** Unit energies (picojoules unless noted). */
struct EnergyParams
{
    double pixelReadPj = 12.1;      //!< exposure + readout per pixel [73]
    double iBufferWritePj = 0.10;   //!< 109 fF i-buffer at ~1 V swing
    double macPj = 0.10;            //!< SCM sample+transfer (135 fF)
    // SAR ADC per conversion: alpha*2^b + beta*b + gamma.
    double adcAlphaPj = 0.011;      //!< DAC array term
    double adcBetaPj = 0.10;        //!< comparator+logic per bit-cycle
    double adcGammaPj = 0.42;       //!< fixed sampling/reference cost
    double ternaryCmpPj = 0.08;     //!< T-CMP conversion (1.5-bit path)
    double localSramBitPj = 0.010;  //!< PE-local 16x5b SRAM per bit
    double globalSramBitPj = 0.050; //!< global SRAM per bit
    double linkBitPj = 19.8;        //!< off-chip serial link per bit
    double digitalPerFramePj = 2000.0; //!< controllers + row scanner
};

/** Energy broken down by sensor component (all nanojoules). */
struct EnergyBreakdown
{
    double pixelNj = 0.0;
    double analogPeNj = 0.0; //!< i-buffers + SCM MACs
    double adcNj = 0.0;
    double sramNj = 0.0;
    double commNj = 0.0;
    double digitalNj = 0.0;  //!< controllers + any digital engine

    double
    totalNj() const
    {
        return pixelNj + analogPeNj + adcNj + sramNj + commNj + digitalNj;
    }
};

/** Turns chip activity counters into per-component energy. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams params = EnergyParams{})
        : _params(params)
    {
    }

    /** Energy of one ADC conversion at @p bits resolution (pJ). */
    double adcConversionPj(double bits) const;

    /** Account a frame's activity counters. */
    EnergyBreakdown fromStats(const ChipStats &stats,
                              double extra_digital_pj = 0.0) const;

    const EnergyParams &params() const { return _params; }

  private:
    EnergyParams _params;
};

} // namespace leca

#endif // LECA_ENERGY_ENERGY_MODEL_HH
