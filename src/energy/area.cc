#include "area.hh"

namespace leca {

double
AreaModel::pixelArrayMm2() const
{
    const double pitch_mm = pixelPitchUm * 1e-3;
    return pitch_mm * pitch_mm * rawRows * rawCols;
}

double
AreaModel::overheadFraction() const
{
    // The conventional CIS baseline already contains the pixel array
    // and a column ADC array; LeCA adds only the PE array on top.
    const double baseline = pixelArrayMm2() + adcArrayMm2;
    return peArrayMm2 / baseline;
}

} // namespace leca
