/**
 * @file
 * Silicon area model of the LeCA sensor (Sec. 6.3): the encoder
 * circuit occupies 1.1 mm^2 (0.85 mm^2 of which is the ADC array) in
 * 65 nm, against a conventional CIS floorplan of a 5 mm^2 pixel array
 * (5 um pitch, 448x448) plus its own ADC — an overhead below 5 %.
 */

#ifndef LECA_ENERGY_AREA_HH
#define LECA_ENERGY_AREA_HH

namespace leca {

/** Per-block layout-estimate areas (mm^2) for a given geometry. */
struct AreaModel
{
    double pixelPitchUm = 5.0;
    int rawRows = 448;
    int rawCols = 448;
    double adcArrayMm2 = 0.85;  //!< variable-resolution ADC array
    double peArrayMm2 = 0.25;   //!< SCM + buffers + local SRAM columns

    /** Pixel-array area in mm^2. */
    double pixelArrayMm2() const;

    /** Total LeCA encoder circuit area (PE + ADC). */
    double encoderMm2() const { return adcArrayMm2 + peArrayMm2; }

    /**
     * Area overhead of LeCA versus a minimal conventional CIS, which
     * already includes the pixel array and an ADC array.
     */
    double overheadFraction() const;
};

} // namespace leca

#endif // LECA_ENERGY_AREA_HH
