#include "survey.hh"

namespace leca {

CisSurvey::CisSurvey()
{
    // Twelve designs the paper cites explicitly, then anonymous rows.
    static const char *const cited[] = {
        "Chen-TCAS1-2014 [11]",  "Choi-JSSC-2015 [14]",
        "Choi-JSSC-2016 [15]",   "Choo-JSSC-2019 [16]",
        "Hwang-TED-2018 [33]",   "Jo-TCAS1-2015 [36]",
        "Kim-JSSC-2021 [40]",    "Kim-JSSC-2016 [41]",
        "Lee-TCAS1-2015 [50]",   "Park-JSSC-2020 [64]",
        "Seo-VLSI-2021 [71]",    "Shin-TED-2012 [72]",
    };
    static const double power_cycle[] = {0.57, 0.61, 0.65, 0.69,
                                         0.73, 0.77, 0.81};
    static const double time_cycle[] = {0.26, 0.30, 0.34, 0.38, 0.42};
    static const double area_cycle[] = {0.52, 0.58, 0.64, 0.70};
    static const int years[] = {2010, 2012, 2014, 2015, 2016, 2017,
                                2018, 2019, 2020, 2021, 2022};

    _entries.reserve(37);
    for (int i = 0; i < 37; ++i) {
        CisSurveyEntry entry;
        if (i < 12) {
            entry.key = cited[i];
        } else {
            entry.key = "survey-entry-" + std::to_string(i - 11);
        }
        entry.year = years[i % 11];
        entry.adcBufferPowerShare = power_cycle[i % 7];
        entry.readoutTimeShare = time_cycle[i % 5];
        entry.adcBufferAreaShare = area_cycle[i % 4];
        _entries.push_back(entry);
    }
}

double
CisSurvey::meanOf(double CisSurveyEntry::*field) const
{
    double sum = 0.0;
    for (const auto &entry : _entries)
        sum += entry.*field;
    return sum / static_cast<double>(_entries.size());
}

double
CisSurvey::meanPowerShare() const
{
    return meanOf(&CisSurveyEntry::adcBufferPowerShare);
}

double
CisSurvey::meanReadoutTimeShare() const
{
    return meanOf(&CisSurveyEntry::readoutTimeShare);
}

double
CisSurvey::meanAreaShare() const
{
    return meanOf(&CisSurveyEntry::adcBufferAreaShare);
}

} // namespace leca
